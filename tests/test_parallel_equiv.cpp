// Differential tests: parallel execution ≡ serial execution, byte for
// byte, for every ExecPolicy-taking API — fault-parallel signature
// batches, detection flags, coverage, the solo-signature cache warm, and
// whole diagnosis campaigns — at thread counts below, at, and far above
// the work size (this container may expose a single core; determinism
// must hold regardless).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "diag/diagnosis.hpp"
#include "netlist/generator.hpp"
#include "workload/campaign.hpp"

namespace mdd {
namespace {

const ExecPolicy kPolicies[] = {ExecPolicy::parallel(2),
                                ExecPolicy::parallel(8),
                                ExecPolicy::parallel(37)};

/// Deterministic mixed fault list: stems, branches, and non-feedback
/// dominant bridges.
std::vector<Fault> make_fault_list(const Netlist& nl, std::size_t n,
                                   std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Fault> faults;
  while (faults.size() < n) {
    const NetId net = static_cast<NetId>(rng() % nl.n_nets());
    switch (rng() % 4) {
      case 0:
        faults.push_back(Fault::stem_sa(net, rng() % 2 == 0));
        break;
      case 1: {
        const auto fi = nl.fanins(net);
        if (fi.empty()) continue;
        const std::uint32_t pin = static_cast<std::uint32_t>(rng() % fi.size());
        if (nl.fanouts(fi[pin]).size() > 1)
          faults.push_back(Fault::branch_sa(net, pin, rng() % 2 == 0));
        else
          faults.push_back(Fault::stem_sa(net, rng() % 2 == 0));
        break;
      }
      default: {
        const NetId other = static_cast<NetId>(rng() % nl.n_nets());
        if (other == net || is_feedback_pair(nl, net, other)) continue;
        faults.push_back(Fault::bridge_dom(net, other));
        break;
      }
    }
  }
  return faults;
}

void expect_equal_counts(const MatchCounts& a, const MatchCounts& b) {
  EXPECT_EQ(a.tfsf, b.tfsf);
  EXPECT_EQ(a.tfsp, b.tfsp);
  EXPECT_EQ(a.tpsf, b.tpsf);
}

class ParallelEquivFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    netlist_ = new Netlist(make_named_circuit("g200"));
    patterns_ = new PatternSet(
        PatternSet::random(192, netlist_->n_inputs(), 0xF00D));
  }
  static void TearDownTestSuite() {
    delete patterns_;
    delete netlist_;
    patterns_ = nullptr;
    netlist_ = nullptr;
  }
  static Netlist* netlist_;
  static PatternSet* patterns_;
};
Netlist* ParallelEquivFixture::netlist_ = nullptr;
PatternSet* ParallelEquivFixture::patterns_ = nullptr;

TEST_F(ParallelEquivFixture, SignatureBatchMatchesSerial) {
  FaultSimulator fsim(*netlist_, *patterns_);
  const std::vector<Fault> faults = make_fault_list(*netlist_, 64, 7);
  const auto serial = fsim.signatures(faults, ExecPolicy::serial());
  ASSERT_EQ(serial.size(), faults.size());
  // Serial batch equals the one-at-a-time member calls.
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_EQ(serial[i], fsim.signature(faults[i])) << "fault " << i;
  for (const ExecPolicy& policy : kPolicies) {
    SCOPED_TRACE("n_threads=" + std::to_string(policy.n_threads));
    EXPECT_EQ(fsim.signatures(faults, policy), serial);
  }
}

TEST_F(ParallelEquivFixture, MatchCountsAndScoresMatchSerial) {
  FaultSimulator fsim(*netlist_, *patterns_);
  const std::vector<Fault> faults = make_fault_list(*netlist_, 32, 11);
  // "Observed" = a 2-defect composite response.
  const std::vector<Fault> defect{faults[0], faults[15]};
  const ErrorSignature observed = fsim.signature(defect);
  const auto serial = fsim.signatures(faults, ExecPolicy::serial());
  const ScoreWeights weights;
  for (const ExecPolicy& policy : kPolicies) {
    SCOPED_TRACE("n_threads=" + std::to_string(policy.n_threads));
    const auto par = fsim.signatures(faults, policy);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const MatchCounts ms = match(observed, serial[i]);
      const MatchCounts mp = match(observed, par[i]);
      expect_equal_counts(ms, mp);
      EXPECT_EQ(score_of(ms, weights), score_of(mp, weights));
    }
  }
}

TEST_F(ParallelEquivFixture, FewerFaultsThanThreads) {
  FaultSimulator fsim(*netlist_, *patterns_);
  const std::vector<Fault> faults = make_fault_list(*netlist_, 3, 13);
  const auto serial = fsim.signatures(faults, ExecPolicy::serial());
  EXPECT_EQ(fsim.signatures(faults, ExecPolicy::parallel(8)), serial);
  EXPECT_EQ(fsim.signatures(faults, ExecPolicy::parallel(37)), serial);
}

TEST_F(ParallelEquivFixture, ZeroFaultsIsEmptyForAnyPolicy) {
  FaultSimulator fsim(*netlist_, *patterns_);
  const std::vector<Fault> none;
  for (const ExecPolicy& policy : kPolicies) {
    EXPECT_TRUE(fsim.signatures(none, policy).empty());
    EXPECT_TRUE(fsim.detected(none, policy).empty());
    EXPECT_EQ(fsim.coverage(none, policy), 1.0);
  }
}

TEST_F(ParallelEquivFixture, DetectionAndCoverageMatchSerial) {
  FaultSimulator fsim(*netlist_, *patterns_);
  const std::vector<Fault> faults = make_fault_list(*netlist_, 96, 17);
  const auto serial = fsim.detected(faults);
  const double cov_serial = fsim.coverage(faults);
  for (const ExecPolicy& policy : kPolicies) {
    SCOPED_TRACE("n_threads=" + std::to_string(policy.n_threads));
    EXPECT_EQ(fsim.detected(faults, policy), serial);
    EXPECT_EQ(fsim.coverage(faults, policy), cov_serial);
  }
}

TEST_F(ParallelEquivFixture, PairSimulatorMatchesSerial) {
  const PatternSet launch =
      PatternSet::random(128, netlist_->n_inputs(), 0xA);
  const PatternSet capture =
      PatternSet::random(128, netlist_->n_inputs(), 0xB);
  PairFaultSimulator fsim(*netlist_, launch, capture);
  std::vector<Fault> faults = make_fault_list(*netlist_, 24, 19);
  // Mix in transition faults (pair-mode specific).
  std::mt19937_64 rng(23);
  for (std::size_t k = 0; k < 8; ++k) {
    const NetId net = static_cast<NetId>(rng() % netlist_->n_nets());
    faults.push_back(rng() % 2 ? Fault::slow_to_rise(net)
                               : Fault::slow_to_fall(net));
  }
  const auto serial = fsim.signatures(faults, ExecPolicy::serial());
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_EQ(serial[i], fsim.signature(faults[i])) << "fault " << i;
  for (const ExecPolicy& policy : kPolicies) {
    SCOPED_TRACE("n_threads=" + std::to_string(policy.n_threads));
    EXPECT_EQ(fsim.signatures(faults, policy), serial);
    EXPECT_EQ(fsim.coverage(faults, policy),
              fsim.coverage(faults, ExecPolicy::serial()));
  }
}

TEST_F(ParallelEquivFixture, SoloCacheWarmMatchesLazySerial) {
  FaultSimulator fsim(*netlist_, *patterns_);
  const std::vector<Fault> defect = make_fault_list(*netlist_, 2, 29);
  const Datalog log = datalog_from_defect(*netlist_, defect, *patterns_,
                                          fsim.good_response());
  ASSERT_TRUE(log.has_failures());

  DiagnosisContext lazy(*netlist_, *patterns_, log);
  for (std::size_t i = 0; i < lazy.n_candidates(); ++i) lazy.solo_signature(i);
  EXPECT_EQ(lazy.solo_compute_count(), lazy.n_candidates());

  for (const ExecPolicy& policy : kPolicies) {
    SCOPED_TRACE("n_threads=" + std::to_string(policy.n_threads));
    DiagnosisContext warm(*netlist_, *patterns_, log);
    warm.warm_solo_signatures(policy);
    EXPECT_EQ(warm.solo_compute_count(), warm.n_candidates());
    ASSERT_EQ(warm.n_candidates(), lazy.n_candidates());
    for (std::size_t i = 0; i < lazy.n_candidates(); ++i)
      EXPECT_EQ(warm.solo_signature(i), lazy.solo_signature(i)) << "i=" << i;
  }
}

/// All deterministic aggregate fields (cpu sums are measured wall time and
/// excluded by design — see CampaignConfig::exec).
void expect_equal_aggregate(const MethodAggregate& a,
                            const MethodAggregate& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.n_cases, b.n_cases);
  EXPECT_EQ(a.sum_hit_rate, b.sum_hit_rate);
  EXPECT_EQ(a.sum_precision, b.sum_precision);
  EXPECT_EQ(a.sum_resolution, b.sum_resolution);
  EXPECT_EQ(a.n_all_hit, b.n_all_hit);
  EXPECT_EQ(a.n_first_hit, b.n_first_hit);
  EXPECT_EQ(a.n_exact, b.n_exact);
}

void expect_equal_campaign(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.n_cases, b.n_cases);
  EXPECT_EQ(a.avg_failing_patterns, b.avg_failing_patterns);
  EXPECT_EQ(a.avg_failing_bits, b.avg_failing_bits);
  EXPECT_EQ(a.avg_slat_fraction, b.avg_slat_fraction);
  expect_equal_aggregate(a.single, b.single);
  expect_equal_aggregate(a.slat, b.slat);
  expect_equal_aggregate(a.multiplet, b.multiplet);
}

TEST_F(ParallelEquivFixture, CampaignTableMatchesSerial) {
  CampaignConfig cfg;
  cfg.n_cases = 6;
  cfg.defect.multiplicity = 2;
  cfg.seed = 0xCAFE;
  cfg.exec = ExecPolicy::serial();
  const CampaignResult serial = run_campaign(*netlist_, *patterns_, cfg);
  ASSERT_GT(serial.n_cases, 0u);
  for (const ExecPolicy& policy : kPolicies) {
    SCOPED_TRACE("n_threads=" + std::to_string(policy.n_threads));
    cfg.exec = policy;
    expect_equal_campaign(run_campaign(*netlist_, *patterns_, cfg), serial);
  }
}

TEST_F(ParallelEquivFixture, TdfCampaignTableMatchesSerial) {
  const PatternSet launch =
      PatternSet::random(128, netlist_->n_inputs(), 0xC);
  const PatternSet capture =
      PatternSet::random(128, netlist_->n_inputs(), 0xD);
  CampaignConfig cfg;
  cfg.n_cases = 4;
  cfg.defect.multiplicity = 2;
  cfg.seed = 0xBEE;
  cfg.exec = ExecPolicy::serial();
  const CampaignResult serial =
      run_tdf_campaign(*netlist_, launch, capture, cfg);
  ASSERT_GT(serial.n_cases, 0u);
  for (const ExecPolicy& policy : {ExecPolicy::parallel(2),
                                   ExecPolicy::parallel(8)}) {
    SCOPED_TRACE("n_threads=" + std::to_string(policy.n_threads));
    cfg.exec = policy;
    expect_equal_campaign(run_tdf_campaign(*netlist_, launch, capture, cfg),
                          serial);
  }
}

TEST_F(ParallelEquivFixture, ZeroCaseCampaignIsEmpty) {
  CampaignConfig cfg;
  cfg.n_cases = 0;
  for (const ExecPolicy& policy :
       {ExecPolicy::serial(), ExecPolicy::parallel(8)}) {
    cfg.exec = policy;
    const CampaignResult r = run_campaign(*netlist_, *patterns_, cfg);
    EXPECT_EQ(r.n_cases, 0u);
  }
}

}  // namespace
}  // namespace mdd
