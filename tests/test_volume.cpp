// Volume-diagnosis pipeline tests: the VolumeAggregator's deterministic
// cross-datalog reduction, and the `op=diagnose_batch` serving path — the
// batch contract (per-datalog reports byte-identical to sequential single
// requests at every thread count), streamed-item ordering, per-item error
// isolation, input validation, and session survival under a cache budget
// too small for the session (this file builds into the tsan-labelled
// binary because batches spawn their own worker threads).
#include <gtest/gtest.h>

#include <clocale>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "diag/datalog.hpp"
#include "diag/volume.hpp"
#include "fsim/fsim.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"
#include "server/reorder.hpp"
#include "server/service.hpp"
#include "workload/textio.hpp"

namespace mdd::server {
namespace {

DatalogVolumeRecord make_rec(std::size_t index, std::vector<Fault> suspects,
                             std::vector<double> scores,
                             std::size_t n_failing = 4) {
  DatalogVolumeRecord r;
  r.index = index;
  r.ok = true;
  r.n_failing_patterns = n_failing;
  r.suspects = std::move(suspects);
  r.scores = std::move(scores);
  return r;
}

TEST(VolumeAggregator, ClassifiesRecurrentCandidatesSystematic) {
  const Fault recurrent = Fault::stem_sa(5, false);
  const Fault once_a = Fault::stem_sa(9, true);
  const Fault once_b = Fault::stem_sa(11, true);

  VolumeAggregator agg(5);
  // `recurrent` tops three of five datalogs; the other two are one-offs.
  agg.record(make_rec(0, {recurrent}, {10.0}));
  agg.record(make_rec(1, {recurrent, once_a}, {8.0, 2.0}));
  agg.record(make_rec(2, {recurrent}, {12.0}));
  agg.record(make_rec(3, {once_a}, {5.0}));
  agg.record(make_rec(4, {once_b}, {6.0}));

  const VolumeSummary s = agg.summarize();
  EXPECT_EQ(s.n_datalogs, 5u);
  EXPECT_EQ(s.n_diagnosed, 5u);
  EXPECT_EQ(s.n_distinct_candidates, 3u);

  ASSERT_FALSE(s.recurrences.empty());
  const CandidateRecurrence& top = s.recurrences.front();
  EXPECT_EQ(top.fault, recurrent);
  EXPECT_EQ(top.n_datalogs, 3u);
  EXPECT_EQ(top.n_rank1, 3u);
  EXPECT_DOUBLE_EQ(top.total_score, 30.0);
  EXPECT_DOUBLE_EQ(top.best_score, 12.0);
  EXPECT_TRUE(top.systematic);

  // once_a appears in two datalogs — exactly the min_recurrences floor
  // (max(2, 0.25*5=1)), so it classifies systematic too; once_b does not.
  for (const CandidateRecurrence& r : s.recurrences) {
    if (r.fault == once_a) {
      EXPECT_TRUE(r.systematic);
    }
    if (r.fault == once_b) {
      EXPECT_FALSE(r.systematic);
    }
  }

  // Datalogs classify by their TOP suspect: 0,1,2 (recurrent) and
  // 3 (once_a, systematic) vs 4 (once_b).
  EXPECT_EQ(s.n_systematic_datalogs, 4u);
  EXPECT_EQ(s.n_random_datalogs, 1u);
}

TEST(VolumeAggregator, SummaryIsIndependentOfRecordArrivalOrder) {
  const Fault a = Fault::stem_sa(3, false);
  const Fault b = Fault::stem_sa(7, true);
  const auto records = [&] {
    return std::vector<DatalogVolumeRecord>{
        make_rec(0, {a, b}, {4.0, 1.0}, 2),
        make_rec(1, {b}, {9.0}, 5),
        make_rec(2, {a}, {3.0}, 17),
    };
  };

  VolumeAggregator fwd(3), rev(3);
  for (const auto& r : records()) fwd.record(r);
  auto rs = records();
  for (auto it = rs.rbegin(); it != rs.rend(); ++it) rev.record(*it);

  const VolumeSummary x = fwd.summarize(), y = rev.summarize();
  ASSERT_EQ(x.recurrences.size(), y.recurrences.size());
  for (std::size_t i = 0; i < x.recurrences.size(); ++i) {
    EXPECT_EQ(x.recurrences[i].fault, y.recurrences[i].fault);
    EXPECT_EQ(x.recurrences[i].n_datalogs, y.recurrences[i].n_datalogs);
    EXPECT_DOUBLE_EQ(x.recurrences[i].total_score,
                     y.recurrences[i].total_score);
  }
  ASSERT_EQ(x.net_hits.size(), y.net_hits.size());
  for (std::size_t i = 0; i < x.net_hits.size(); ++i)
    EXPECT_EQ(x.net_hits[i], y.net_hits[i]);
}

TEST(VolumeAggregator, PatternHistogramUsesPowerOfTwoBuckets) {
  const Fault f = Fault::stem_sa(2, false);
  VolumeAggregator agg(6);
  const std::size_t counts[] = {0, 1, 2, 4, 7, 9};
  for (std::size_t i = 0; i < 6; ++i)
    agg.record(make_rec(i, {f}, {1.0}, counts[i]));

  const VolumeSummary s = agg.summarize();
  std::vector<std::string> labels;
  for (const VolumeBucket& b : s.failing_pattern_hist)
    labels.push_back(b.label);
  EXPECT_EQ(labels, (std::vector<std::string>{"0", "1", "2", "3-4", "5-8",
                                              "9-16"}));
}

TEST(VolumeAggregator, FailedAndUnfilledRecordsAreAccounted) {
  VolumeAggregator agg(3);
  DatalogVolumeRecord failed;
  failed.index = 1;  // ok stays false: the item that threw
  agg.record(std::move(failed));
  agg.record(make_rec(2, {Fault::stem_sa(4, false)}, {2.0}));
  // index 0 never arrives (e.g. batch cancelled before it ran)

  const VolumeSummary s = agg.summarize();
  EXPECT_EQ(s.n_datalogs, 3u);
  EXPECT_EQ(s.n_diagnosed, 1u);
  EXPECT_EQ(s.n_failed, 1u);

  DatalogVolumeRecord out_of_range;
  out_of_range.index = 3;
  EXPECT_THROW(agg.record(std::move(out_of_range)), std::out_of_range);
}

TEST(VolumeAggregator, SystematicFractionFloorRoundsUpNotDown) {
  // 9 diagnosed datalogs at fraction 0.3: the floor is ceil(2.7) = 3.
  // The old truncating cast gave 2, misclassifying a twice-seen candidate
  // as systematic.
  const Fault twice = Fault::stem_sa(5, false);
  const Fault thrice = Fault::stem_sa(9, true);
  const Fault filler = Fault::stem_sa(13, false);
  VolumeOptions options;
  options.systematic_fraction = 0.3;
  options.min_recurrences = 2;

  VolumeAggregator agg(9, options);
  agg.record(make_rec(0, {twice}, {4.0}));
  agg.record(make_rec(1, {twice}, {4.0}));
  agg.record(make_rec(2, {thrice}, {4.0}));
  agg.record(make_rec(3, {thrice}, {4.0}));
  agg.record(make_rec(4, {thrice}, {4.0}));
  for (std::size_t i = 5; i < 9; ++i)
    agg.record(make_rec(i, {filler}, {1.0}));

  const VolumeSummary s = agg.summarize();
  ASSERT_EQ(s.n_diagnosed, 9u);
  for (const CandidateRecurrence& r : s.recurrences) {
    if (r.fault == twice)
      EXPECT_FALSE(r.systematic) << "2 of 9 is below ceil(0.3*9)=3";
    if (r.fault == thrice) EXPECT_TRUE(r.systematic);
  }
  // Top-suspect classification moves with the corrected floor too: the
  // two `twice` datalogs are random, not systematic.
  EXPECT_EQ(s.n_systematic_datalogs, 7u);
  EXPECT_EQ(s.n_random_datalogs, 2u);
}

TEST(VolumeAggregator, ExactlyAtFractionThresholdIsSystematic) {
  // ceil must not overshoot: 0.25 of 8 diagnosed is exactly 2 — an
  // integral product needs no rounding, and 2 recurrences qualify.
  const Fault edge = Fault::stem_sa(5, false);
  const Fault filler = Fault::stem_sa(13, false);
  VolumeOptions options;
  options.systematic_fraction = 0.25;
  options.min_recurrences = 1;

  VolumeAggregator agg(8, options);
  agg.record(make_rec(0, {edge}, {4.0}));
  agg.record(make_rec(1, {edge}, {4.0}));
  for (std::size_t i = 2; i < 8; ++i)
    agg.record(make_rec(i, {filler}, {1.0}));

  const VolumeSummary s = agg.summarize();
  ASSERT_EQ(s.n_diagnosed, 8u);
  bool saw_edge = false;
  for (const CandidateRecurrence& r : s.recurrences) {
    if (r.fault == edge) {
      saw_edge = true;
      EXPECT_TRUE(r.systematic) << "exactly fraction*diagnosed qualifies";
    }
  }
  EXPECT_TRUE(saw_edge);
}

TEST(VolumeAggregator, BridgeFaultsHitBothNets) {
  const Fault bridge = Fault::bridge_dom(6, 13);
  VolumeAggregator agg(1);
  agg.record(make_rec(0, {bridge}, {3.0}));
  const VolumeSummary s = agg.summarize();
  ASSERT_EQ(s.net_hits.size(), 2u);
  EXPECT_EQ(s.net_hits[0], (std::pair<NetId, std::size_t>{6, 1}));
  EXPECT_EQ(s.net_hits[1], (std::pair<NetId, std::size_t>{13, 1}));
}

Json indexed_item(std::size_t i) {
  Json item;
  item.set("index", static_cast<double>(i));
  return item;
}

TEST(ReorderBuffer, WorstCaseScheduleEmitsInOrderWithBoundedPeak) {
  // The pathological schedule: item 0 finishes LAST. Nothing may reach
  // the sink until it lands, then the whole batch drains in index order,
  // and the high-water mark records that 8 items were buffered at once.
  constexpr std::size_t kN = 8;
  std::vector<std::size_t> emitted;
  ReorderBuffer buffer(kN, [&](const Json& item) {
    emitted.push_back(static_cast<std::size_t>(item.get_number("index")));
  });
  for (std::size_t i = kN - 1; i >= 1; --i) {
    buffer.publish(i, indexed_item(i));
    EXPECT_TRUE(emitted.empty()) << "nothing may emit before index 0";
  }
  EXPECT_EQ(buffer.high_water(), kN - 1);
  buffer.publish(0, indexed_item(0));
  ASSERT_EQ(emitted.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(emitted[i], i);
  EXPECT_EQ(buffer.high_water(), kN);

  // Duplicate and out-of-range publishes are dropped, not re-emitted.
  buffer.publish(3, indexed_item(3));
  buffer.publish(kN + 5, indexed_item(kN + 5));
  EXPECT_EQ(emitted.size(), kN);
}

TEST(ReorderBuffer, ConcurrentPublishersStillEmitStrictIndexOrder) {
  constexpr std::size_t kN = 16;
  std::vector<std::size_t> emitted;
  ReorderBuffer buffer(kN, [&](const Json& item) {
    // The sink runs under the buffer's mutex: no extra lock needed.
    emitted.push_back(static_cast<std::size_t>(item.get_number("index")));
  });
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < kN; ++i)
    workers.emplace_back(
        [&buffer, i] { buffer.publish(i, indexed_item(i)); });
  for (std::thread& t : workers) t.join();

  ASSERT_EQ(emitted.size(), kN);
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_EQ(emitted[i], i) << "stream order must be index order";
  EXPECT_GE(buffer.high_water(), 1u);
  EXPECT_LE(buffer.high_water(), kN) << "buffering is bounded by the batch";
}

TEST(ReorderBuffer, NullSinkCollectsForTheInlineResponse) {
  constexpr std::size_t kN = 4;
  ReorderBuffer buffer(kN, nullptr);
  for (std::size_t i = kN; i-- > 0;) buffer.publish(i, indexed_item(i));
  EXPECT_EQ(buffer.high_water(), kN) << "nothing drains without a sink";
  const std::vector<Json> items = buffer.take_items();
  ASSERT_EQ(items.size(), kN);
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_EQ(static_cast<std::size_t>(items[i].get_number("index")), i);
}

/// One circuit + pattern set on disk plus three datalogs (distinct
/// planted defects) — the ingredients of a diagnose_batch request.
struct BatchFixture {
  std::string netlist_path;
  std::string patterns_path;
  std::vector<std::string> datalog_texts;

  static BatchFixture make(const std::string& tag,
                           std::size_t n_datalogs = 3) {
    const Netlist netlist = make_named_circuit("g200");
    const PatternSet patterns =
        PatternSet::random(96, netlist.n_inputs(), 0xBA7C);
    FaultSimulator fsim(netlist, patterns);

    BatchFixture f;
    f.netlist_path = ::testing::TempDir() + "vol_" + tag + ".bench";
    f.patterns_path = ::testing::TempDir() + "vol_" + tag + ".patterns";
    std::ofstream(f.netlist_path) << write_bench_string(netlist);
    write_patterns_file(f.patterns_path, patterns);
    for (std::size_t i = 0; i < n_datalogs; ++i) {
      const std::vector<Fault> defect{
          Fault::stem_sa(netlist.n_nets() / 4 + 7 * i, i % 2 == 0),
          Fault::stem_sa(netlist.n_nets() / 2 + 5 * i, i % 2 == 1)};
      const Datalog log = datalog_from_defect(netlist, defect, patterns,
                                              fsim.good_response());
      EXPECT_TRUE(log.has_failures());
      std::ostringstream dl;
      write_datalog(dl, log, netlist);
      f.datalog_texts.push_back(dl.str());
    }
    return f;
  }

  Json batch_request(std::size_t threads,
                     const std::string& method = "single") const {
    Json r;
    r.set("op", "diagnose_batch");
    r.set("netlist", netlist_path);
    r.set("patterns", patterns_path);
    JsonArray datalogs;
    for (const std::string& text : datalog_texts) datalogs.emplace_back(text);
    r.set("datalogs", Json(std::move(datalogs)));
    r.set("method", method);
    r.set("threads", threads);
    return r;
  }

  Json single_request(std::size_t i,
                      const std::string& method = "single") const {
    Json r;
    r.set("op", "diagnose");
    r.set("netlist", netlist_path);
    r.set("patterns", patterns_path);
    r.set("datalog", datalog_texts[i]);
    r.set("method", method);
    return r;
  }
};

std::vector<std::string> sequential_single_reports(
    const BatchFixture& f, const std::string& method = "single") {
  DiagnosisService service;
  std::vector<std::string> dumps;
  for (std::size_t i = 0; i < f.datalog_texts.size(); ++i) {
    const Json response = service.handle(f.single_request(i, method));
    EXPECT_EQ(response.get_string("status"), "ok");
    dumps.push_back(response.find("reports")->dump());
  }
  return dumps;
}

TEST(DiagnoseBatch, ReportsMatchSequentialSinglesAtEveryThreadCount) {
  const BatchFixture f = BatchFixture::make("bytes");
  const std::vector<std::string> singles = sequential_single_reports(f);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    DiagnosisService service;
    const Json response = service.handle(f.batch_request(threads));
    ASSERT_EQ(response.get_string("status"), "ok") << response.dump();
    EXPECT_EQ(response.get_string("op"), "diagnose_batch");
    EXPECT_EQ(static_cast<std::size_t>(response.get_number("n_datalogs")),
              f.datalog_texts.size());
    EXPECT_EQ(static_cast<std::size_t>(response.get_number("threads")),
              threads);

    const JsonArray& results = response.find("results")->as_array();
    ASSERT_EQ(results.size(), singles.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(static_cast<std::size_t>(results[i].get_number("index")), i);
      EXPECT_EQ(results[i].get_string("status"), "ok");
      EXPECT_EQ(results[i].find("reports")->dump(), singles[i])
          << "thread count " << threads << ", datalog " << i;
    }

    const Json* volume = response.find("volume");
    ASSERT_NE(volume, nullptr);
    EXPECT_EQ(static_cast<std::size_t>(volume->get_number("n_diagnosed")),
              f.datalog_texts.size());
    EXPECT_NE(response.find("amortization"), nullptr);
  }
}

TEST(DiagnoseBatch, RepeatedDatalogsAmortizeAndStayIdentical) {
  BatchFixture f = BatchFixture::make("amortize", 2);
  // Stream shape of volume diagnosis: the same two fail logs recur.
  for (int r = 0; r < 2; ++r)
    for (std::size_t i = 0; i < 2; ++i)
      f.datalog_texts.push_back(f.datalog_texts[i]);

  DiagnosisService service;
  const Json response = service.handle(f.batch_request(1));
  ASSERT_EQ(response.get_string("status"), "ok");
  const JsonArray& results = response.find("results")->as_array();
  ASSERT_EQ(results.size(), 6u);
  for (std::size_t i = 2; i < 6; ++i)
    EXPECT_EQ(results[i].find("reports")->dump(),
              results[i % 2].find("reports")->dump())
        << "repeat " << i << " must be byte-identical to its original";

  // The shared memos must absorb the repeats: across the batch, far
  // fewer solo signatures are simulated than candidate slots exist.
  const Json* amortization = response.find("amortization");
  ASSERT_NE(amortization, nullptr);
  const double candidates = amortization->get_number("candidates");
  const double computes = amortization->get_number("solo_computes");
  EXPECT_GT(candidates, 0.0);
  EXPECT_LE(computes, candidates / 2.0)
      << "a 3x-repeated stream must hit the memo for most slots";
}

TEST(DiagnoseBatch, StreamedItemsArriveInOrderAndMatchInlineResults) {
  const BatchFixture f = BatchFixture::make("stream");

  DiagnosisService service;
  Json request = f.batch_request(2);
  request.set("id", 42);
  request.set("stream", true);

  std::vector<Json> streamed;
  const Json response = service.handle(
      request, nullptr, [&](const Json& item) { streamed.push_back(item); });
  ASSERT_EQ(response.get_string("status"), "ok");
  EXPECT_TRUE(response.get_bool("results_streamed"));
  EXPECT_EQ(response.find("results"), nullptr)
      << "streamed batches must not duplicate items in the final response";
  const double high_water = response.get_number("reorder_high_water", -1);
  EXPECT_GE(high_water, 1.0);
  EXPECT_LE(high_water, static_cast<double>(f.datalog_texts.size()))
      << "reorder buffering is bounded by the batch size";

  ASSERT_EQ(streamed.size(), f.datalog_texts.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(streamed[i].get_number("index")), i)
        << "streamed items must arrive in index order";
    EXPECT_EQ(streamed[i].get_string("op"), "diagnose_batch_item");
    EXPECT_EQ(static_cast<std::size_t>(streamed[i].get_number("id")), 42u);
  }

  // Un-streamed run of the same request: item payloads must match.
  DiagnosisService plain;
  const Json inline_response = plain.handle(f.batch_request(2));
  const JsonArray& results = inline_response.find("results")->as_array();
  ASSERT_EQ(results.size(), streamed.size());
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(streamed[i].find("reports")->dump(),
              results[i].find("reports")->dump());

  // Without an emit sink, "stream":true falls back to inline results.
  const Json no_sink = plain.handle(request);
  EXPECT_EQ(no_sink.get_string("status"), "ok");
  EXPECT_NE(no_sink.find("results"), nullptr);
}

TEST(DiagnoseBatch, ItemErrorsAreIsolatedAndCounted) {
  const BatchFixture f = BatchFixture::make("errors", 2);

  Json request;
  request.set("op", "diagnose_batch");
  request.set("netlist", f.netlist_path);
  request.set("patterns", f.patterns_path);
  const std::string good_file = ::testing::TempDir() + "vol_err_ok.datalog";
  std::ofstream(good_file) << f.datalog_texts[0];
  JsonArray files;
  files.emplace_back(good_file);
  files.emplace_back(::testing::TempDir() + "vol_err_missing.datalog");
  request.set("datalog_files", Json(std::move(files)));
  request.set("method", "single");
  request.set("threads", 1);

  DiagnosisService service;
  const Json response = service.handle(request);
  ASSERT_EQ(response.get_string("status"), "ok")
      << "one bad datalog must not fail the batch";
  EXPECT_EQ(static_cast<std::size_t>(response.get_number("n_errors")), 1u);

  const JsonArray& results = response.find("results")->as_array();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].get_string("status"), "ok");
  EXPECT_EQ(results[1].get_string("status"), "error");
  EXPECT_FALSE(results[1].get_string("error").empty());
  EXPECT_EQ(results[1].find("reports"), nullptr);

  const Json* volume = response.find("volume");
  ASSERT_NE(volume, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(volume->get_number("n_failed")), 1u);
  EXPECT_EQ(static_cast<std::size_t>(volume->get_number("n_diagnosed")), 1u);
}

TEST(DiagnoseBatch, DatalogDirMatchesExplicitFileList) {
  const BatchFixture f = BatchFixture::make("dir");
  const std::string dir = ::testing::TempDir() + "vol_dir_corpus";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  JsonArray files;
  for (std::size_t i = 0; i < f.datalog_texts.size(); ++i) {
    const std::string path = dir + "/case_" + std::to_string(i) + ".datalog";
    std::ofstream(path) << f.datalog_texts[i];
    files.emplace_back(path);
  }
  // A non-datalog file in the directory must be ignored.
  std::ofstream(dir + "/README.txt") << "not a datalog\n";

  Json base;
  base.set("op", "diagnose_batch");
  base.set("netlist", f.netlist_path);
  base.set("patterns", f.patterns_path);
  base.set("method", "single");
  base.set("threads", 1);

  DiagnosisService service;
  Json by_dir = base;
  by_dir.set("datalog_dir", dir);
  Json by_files = base;
  by_files.set("datalog_files", Json(std::move(files)));

  const Json a = service.handle(by_dir);
  const Json b = service.handle(by_files);
  ASSERT_EQ(a.get_string("status"), "ok") << a.dump();
  ASSERT_EQ(b.get_string("status"), "ok");
  EXPECT_EQ(a.find("results")->dump(), b.find("results")->dump());
  EXPECT_EQ(a.find("volume")->dump(), b.find("volume")->dump());
}

TEST(DiagnoseBatch, DatalogDirOrderIsByteWiseNotLocaleCollated) {
  // Two batches over the same directory must enumerate identically on
  // every machine: the scan sorts file names byte-wise, so "B" (0x42)
  // precedes "a" (0x61) even under a case-folding locale collation that
  // would say a < B.
  const BatchFixture f = BatchFixture::make("locale", 2);
  const char* saved = std::setlocale(LC_COLLATE, nullptr);
  const std::string previous = saved != nullptr ? saved : "C";
  std::setlocale(LC_COLLATE, "en_US.UTF-8");  // absent locale: no-op
  const std::string dir = ::testing::TempDir() + "vol_locale_corpus";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/B_upper.datalog") << f.datalog_texts[0];
  std::ofstream(dir + "/a_lower.datalog") << f.datalog_texts[1];

  Json request;
  request.set("op", "diagnose_batch");
  request.set("netlist", f.netlist_path);
  request.set("patterns", f.patterns_path);
  request.set("datalog_dir", dir);
  request.set("method", "single");
  request.set("threads", 1);

  DiagnosisService service;
  const Json response = service.handle(request);
  std::setlocale(LC_COLLATE, previous.c_str());
  ASSERT_EQ(response.get_string("status"), "ok") << response.dump();

  const JsonArray& results = response.find("results")->as_array();
  ASSERT_EQ(results.size(), 2u);
  const std::string first = results[0].get_string("datalog_file");
  const std::string second = results[1].get_string("datalog_file");
  EXPECT_NE(first.find("B_upper"), std::string::npos)
      << "'B' (0x42) must sort before 'a' (0x61): got " << first;
  EXPECT_NE(second.find("a_lower"), std::string::npos);

  // And the items carry the RIGHT diagnosis for each file, not just the
  // right names: compare to single requests on the same texts.
  const std::vector<std::string> singles = sequential_single_reports(f);
  EXPECT_EQ(results[0].find("reports")->dump(), singles[0]);
  EXPECT_EQ(results[1].find("reports")->dump(), singles[1]);
}

TEST(DiagnoseBatch, ValidatesInputsBeforeTouchingTheSession) {
  const BatchFixture f = BatchFixture::make("validate", 1);
  DiagnosisService service;

  const auto expect_error = [&](Json request, const std::string& fragment) {
    const Json response = service.handle(request);
    EXPECT_EQ(response.get_string("status"), "error");
    EXPECT_NE(response.get_string("error").find(fragment), std::string::npos)
        << response.dump();
  };

  Json base;
  base.set("op", "diagnose_batch");
  base.set("netlist", f.netlist_path);
  base.set("patterns", f.patterns_path);

  expect_error(base, "exactly one of");

  Json both = base;
  JsonArray texts;
  texts.emplace_back(f.datalog_texts[0]);
  both.set("datalogs", Json(texts));
  both.set("datalog_dir", "/tmp");
  expect_error(both, "exactly one of");

  Json bad_method = base;
  bad_method.set("datalogs", Json(texts));
  bad_method.set("method", "psychic");
  expect_error(bad_method, "unknown method");

  Json empty = base;
  empty.set("datalogs", Json(JsonArray{}));
  expect_error(empty, "no datalogs");

  Json not_strings = base;
  JsonArray numbers;
  numbers.emplace_back(3.0);
  not_strings.set("datalogs", Json(std::move(numbers)));
  expect_error(not_strings, "array of strings");

  Json bad_dir = base;
  bad_dir.set("datalog_dir", "/nonexistent/volume/dir");
  expect_error(bad_dir, "datalog_dir");

  // The session cache must not have been touched by any rejected request.
  EXPECT_EQ(service.cache().stats().misses, 0u);
}

TEST(DiagnoseBatch, CompletesUnderCacheBudgetTooSmallForTheSession) {
  const BatchFixture f = BatchFixture::make("tiny");
  // A 1-byte session budget keeps the cache permanently over budget: the
  // eviction sweep runs on every load, and only the MRU-survivor rule and
  // the batch's pin keep the session resident while items execute.
  ServiceOptions options;
  options.cache_bytes = 1;
  DiagnosisService service(options);

  const std::vector<std::string> singles = sequential_single_reports(f);
  const Json response = service.handle(f.batch_request(2));
  ASSERT_EQ(response.get_string("status"), "ok") << response.dump();
  const JsonArray& results = response.find("results")->as_array();
  ASSERT_EQ(results.size(), singles.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].get_string("status"), "ok");
    EXPECT_EQ(results[i].find("reports")->dump(), singles[i]);
  }
}

}  // namespace
}  // namespace mdd::server
