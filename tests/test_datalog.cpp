// Unit tests: tester datalog and ATE truncation models.
#include <gtest/gtest.h>

#include "diag/datalog.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

ErrorSignature sig_with(std::initializer_list<std::pair<std::uint32_t, Word>>
                            entries,
                        std::size_t n_patterns = 100,
                        std::size_t n_outputs = 8) {
  ErrorSignature sig(n_patterns, n_outputs);
  for (const auto& [p, mask] : entries) sig.append(p, {&mask, 1});
  return sig;
}

TEST(Datalog, NoTruncationPassThrough) {
  const ErrorSignature full = sig_with({{2, 0b101}, {9, 0b1}});
  const Datalog log = make_datalog(full, 100);
  EXPECT_EQ(log.observed, full);
  EXPECT_EQ(log.n_patterns_applied, 100u);
  EXPECT_FALSE(log.pattern_truncated);
  EXPECT_FALSE(log.pin_truncated);
  EXPECT_TRUE(log.has_failures());
}

TEST(Datalog, PatternCapStopsTester) {
  const ErrorSignature full =
      sig_with({{2, 0b1}, {5, 0b1}, {9, 0b1}, {40, 0b1}});
  DatalogOptions opt;
  opt.max_failing_patterns = 2;
  const Datalog log = make_datalog(full, 100, opt);
  EXPECT_TRUE(log.pattern_truncated);
  EXPECT_EQ(log.observed.n_failing_patterns(), 2u);
  // Tester stopped right after the second failing pattern (index 5).
  EXPECT_EQ(log.n_patterns_applied, 6u);
}

TEST(Datalog, PinCapKeepsLowestPins) {
  const ErrorSignature full = sig_with({{3, 0b11011}});
  DatalogOptions opt;
  opt.max_failing_pins = 2;
  const Datalog log = make_datalog(full, 100, opt);
  EXPECT_TRUE(log.pin_truncated);
  EXPECT_FALSE(log.pattern_truncated);
  EXPECT_EQ(log.observed.failing_outputs(0),
            (std::vector<std::uint32_t>{0, 1}));
}

TEST(Datalog, PinCapAcrossWords) {
  ErrorSignature full(10, 130);
  std::vector<Word> mask(3, kAllZero);
  mask[0] = 0b1;           // output 0
  mask[1] = 0b10;          // output 65
  mask[2] = 0b1;           // output 128
  full.append(1, mask);
  DatalogOptions opt;
  opt.max_failing_pins = 2;
  const Datalog log = make_datalog(full, 10, opt);
  EXPECT_EQ(log.observed.failing_outputs(0),
            (std::vector<std::uint32_t>{0, 65}));
}

TEST(Datalog, EmptySignature) {
  const ErrorSignature full(100, 8);
  const Datalog log = make_datalog(full, 100);
  EXPECT_FALSE(log.has_failures());
  EXPECT_EQ(log.n_patterns_applied, 100u);
}

TEST(Datalog, FromDefectEndToEnd) {
  const Netlist nl = make_c17();
  const PatternSet patterns = PatternSet::exhaustive(5);
  const PatternSet good = simulate(nl, patterns);
  const Fault f = Fault::stem_sa(nl.find_net("11"), true);
  const Datalog log =
      datalog_from_defect(nl, {&f, 1}, patterns, good);
  EXPECT_TRUE(log.has_failures());
  // Every logged failure must be a real response difference.
  const PatternSet faulty = simulate_with_faults(nl, {&f, 1}, patterns);
  EXPECT_EQ(log.observed, ErrorSignature::diff(good, faulty));
}

}  // namespace
}  // namespace mdd
