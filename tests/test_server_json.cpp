// Tests for the serving protocol's JSON value type: deterministic
// byte-stable dumps (the property the served-vs-CLI differential rests
// on), parse/dump round-trips, escape and surrogate handling, and
// positioned rejection of malformed input.
#include <gtest/gtest.h>

#include <string>

#include "server/json.hpp"

namespace mdd::server {
namespace {

TEST(JsonDump, ScalarsAndNumberFormatting) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  // Integral doubles print without a fractional part — report counts and
  // ids must not grow a ".0" on the wire.
  EXPECT_EQ(Json(0.0).dump(), "0");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(JsonDump, ObjectsKeepInsertionOrder) {
  Json obj;
  obj.set("zebra", 1);
  obj.set("apple", 2);
  obj.set("mango", 3);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  // set() on an existing key replaces in place, preserving position.
  obj.set("apple", 9);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
}

TEST(JsonDump, ControlCharactersEscaped) {
  EXPECT_EQ(Json("a\nb\tc").dump(), "\"a\\nb\\tc\"");
  EXPECT_EQ(Json(std::string("\x01", 1)).dump(), "\"\\u0001\"");
  EXPECT_EQ(Json("quote\"back\\slash").dump(),
            "\"quote\\\"back\\\\slash\"");
}

TEST(JsonRoundTrip, ParseOfDumpIsIdentity) {
  Json obj;
  obj.set("id", 7);
  obj.set("status", "ok");
  obj.set("partial", true);
  obj.set("score", -12.25);
  JsonArray arr;
  arr.push_back(Json("sa0 n16"));
  arr.push_back(Json(nullptr));
  Json nested;
  nested.set("tfsf", 3);
  arr.push_back(nested);
  obj.set("suspects", std::move(arr));

  const std::string wire = obj.dump();
  const Json back = Json::parse(wire);
  EXPECT_EQ(back, obj);
  EXPECT_EQ(back.dump(), wire);
}

TEST(JsonParse, WhitespaceAndLookups) {
  const Json v = Json::parse("  { \"a\" : [ 1 , 2.5 , \"x\" ] ,\n"
                             "    \"b\" : { \"c\" : null } }  ");
  ASSERT_TRUE(v.is_object());
  const Json* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[1].as_number(), 2.5);
  EXPECT_EQ(v.get_string("missing", "dflt"), "dflt");
  const Json* b = v.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->find("c")->is_null());
}

TEST(JsonParse, UnicodeEscapes) {
  // BMP escape decodes to UTF-8.
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  // Surrogate pair: U+1F600 (4-byte UTF-8).
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
  // Unpaired surrogates are rejected, either half.
  EXPECT_THROW(Json::parse("\"\\ud83d\""), std::runtime_error);
  EXPECT_THROW(Json::parse("\"\\ude00\""), std::runtime_error);
  EXPECT_THROW(Json::parse("\"\\uZZZZ\""), std::runtime_error);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(Json::parse("nul"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"raw\ncontrol\""), std::runtime_error);
  // One value per parse — trailing junk is an error, not ignored.
  EXPECT_THROW(Json::parse("{} {}"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
}

TEST(JsonParse, ErrorsCarryBytePosition) {
  try {
    Json::parse("{\"a\": bogus}");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    // The reader points at where it gave up — a client debugging a bad
    // request needs the offset, not just "syntax error".
    EXPECT_NE(std::string(e.what()).find("6"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParse, BoundsRecursionDepth) {
  // Depth 64 nests fine; one deeper is rejected (stack safety against a
  // hostile client).
  std::string deep_ok(64, '[');
  deep_ok += "1";
  deep_ok.append(64, ']');
  EXPECT_NO_THROW(Json::parse(deep_ok));

  std::string too_deep(65, '[');
  too_deep += "1";
  too_deep.append(65, ']');
  EXPECT_THROW(Json::parse(too_deep), std::runtime_error);
}

TEST(JsonAccessors, TypeMismatchFallsBackToDefault) {
  const Json num(3.5);
  EXPECT_EQ(num.as_string(), "");
  EXPECT_TRUE(num.as_array().empty());
  EXPECT_TRUE(num.as_object().empty());
  EXPECT_EQ(num.find("k"), nullptr);
  EXPECT_EQ(Json("text").as_number(9.0), 9.0);
  EXPECT_EQ(Json("text").as_bool(true), true);
  EXPECT_EQ(Json(2.9).as_int(), 2);  // toward zero, JSON's double model
}

}  // namespace
}  // namespace mdd::server
