// SignatureMatcher oracle fuzz: the kernel-accelerated bitmap scorer is
// checked against a deliberately naive scorer that walks every single
// (pattern, output) bit of both signatures — no words, no popcounts, no
// shared code with the implementation under test. Shapes are chosen to
// hit ragged PO tail words (n_outputs 1, 63, 64, 65, 130), ragged pattern
// counts, fully-failing ("all-X"-dense) patterns, truncated observation
// windows (restrict_signature), residual windows (signature_difference),
// and empty signatures — under every available simulation kernel, since
// SignatureMatcher routes its popcounts through the kernel vtable.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "fsim/fsim.hpp"
#include "sim/kernel.hpp"

namespace mdd {
namespace {

/// True iff (pattern p, output o) is an error bit of `sig`.
bool bit_of(const ErrorSignature& sig, std::uint32_t p, std::size_t o) {
  const std::span<const Word> mask = sig.mask_of_pattern(p);
  if (mask.empty()) return false;
  return (mask[o / 64] >> (o % 64)) & Word{1};
}

/// The oracle: per-bit double loop over the full (pattern x output) grid.
MatchCounts naive_match(const ErrorSignature& observed,
                        const ErrorSignature& sim) {
  MatchCounts counts;
  for (std::uint32_t p = 0; p < observed.n_patterns(); ++p) {
    for (std::size_t o = 0; o < observed.n_outputs(); ++o) {
      const bool tf = bit_of(observed, p, o);
      const bool sf = bit_of(sim, p, o);
      counts.tfsf += tf && sf;
      counts.tfsp += tf && !sf;
      counts.tpsf += !tf && sf;
    }
  }
  return counts;
}

void expect_equal_counts(const MatchCounts& got, const MatchCounts& want,
                         const std::string& what) {
  EXPECT_EQ(got.tfsf, want.tfsf) << what;
  EXPECT_EQ(got.tfsp, want.tfsp) << what;
  EXPECT_EQ(got.tpsf, want.tpsf) << what;
}

/// Random signature; density = 0 yields an empty signature, density = 1
/// makes every pattern fail, fill_all additionally sets EVERY output bit
/// of each failing pattern (the all-X/fully-corrupt extreme, where the
/// ragged last PO word must still be masked to n_outputs bits).
ErrorSignature random_signature(std::mt19937_64& rng, std::size_t n_patterns,
                                std::size_t n_outputs, unsigned density,
                                bool fill_all = false) {
  ErrorSignature sig(n_patterns, n_outputs);
  for (std::uint32_t p = 0; p < n_patterns; ++p) {
    if (density == 0 || rng() % density != 0) continue;
    std::vector<Word> mask(sig.n_po_words(), kAllZero);
    if (fill_all) {
      for (std::size_t o = 0; o < n_outputs; ++o)
        mask[o / 64] |= Word{1} << (o % 64);
    } else {
      const std::size_t n_fail = 1 + rng() % 6;
      for (std::size_t k = 0; k < n_fail; ++k) {
        const std::size_t o = rng() % n_outputs;
        mask[o / 64] |= Word{1} << (o % 64);
      }
    }
    sig.append(p, mask);
  }
  return sig;
}

constexpr std::size_t kOutputCounts[] = {1, 63, 64, 65, 130};
constexpr std::size_t kPatternCounts[] = {1, 40, 64, 65, 130, 301};

TEST(MatcherOracle, AgreesWithPerBitOracleUnderEveryKernel) {
  std::mt19937_64 rng(0xACE5);
  for (const std::size_t n_outputs : kOutputCounts) {
    for (const std::size_t n_patterns : kPatternCounts) {
      const ErrorSignature observed =
          random_signature(rng, n_patterns, n_outputs, 2);
      std::vector<ErrorSignature> candidates;
      candidates.push_back(random_signature(rng, n_patterns, n_outputs, 2));
      candidates.push_back(random_signature(rng, n_patterns, n_outputs, 5));
      candidates.push_back(random_signature(rng, n_patterns, n_outputs, 0));
      candidates.push_back(
          random_signature(rng, n_patterns, n_outputs, 1, true));
      for (const SimKernel* k : available_kernels()) {
        const SignatureMatcher matcher(observed, *k);
        for (std::size_t c = 0; c < candidates.size(); ++c)
          expect_equal_counts(
              matcher.match(candidates[c]), naive_match(observed, candidates[c]),
              "outputs=" + std::to_string(n_outputs) +
                  " patterns=" + std::to_string(n_patterns) +
                  " kernel=" + k->name + " candidate=" + std::to_string(c));
      }
    }
  }
}

TEST(MatcherOracle, AllFailingObservedAllFailingSim) {
  // Every pattern fails on every output on both sides: tfsf must equal the
  // exact grid size, with zero unexplained/mispredicted bits — any stray
  // high bit in the ragged last PO word would break this.
  for (const std::size_t n_outputs : kOutputCounts) {
    std::mt19937_64 rng(7);
    const std::size_t n_patterns = 70;
    const ErrorSignature full =
        random_signature(rng, n_patterns, n_outputs, 1, true);
    for (const SimKernel* k : available_kernels()) {
      const SignatureMatcher matcher(full, *k);
      const MatchCounts counts = matcher.match(full);
      EXPECT_EQ(counts.tfsf, n_patterns * n_outputs)
          << "outputs=" << n_outputs << " kernel=" << k->name;
      EXPECT_EQ(counts.tfsp, 0u);
      EXPECT_EQ(counts.tpsf, 0u);
    }
  }
}

TEST(MatcherOracle, EmptySignaturesOnEitherSide) {
  std::mt19937_64 rng(11);
  const ErrorSignature observed = random_signature(rng, 130, 65, 2);
  const ErrorSignature empty(130, 65);
  for (const SimKernel* k : available_kernels()) {
    expect_equal_counts(SignatureMatcher(observed, *k).match(empty),
                        naive_match(observed, empty),
                        std::string("observed-vs-empty kernel=") + k->name);
    expect_equal_counts(SignatureMatcher(empty, *k).match(observed),
                        naive_match(empty, observed),
                        std::string("empty-vs-observed kernel=") + k->name);
    expect_equal_counts(SignatureMatcher(empty, *k).match(empty),
                        naive_match(empty, empty),
                        std::string("empty-vs-empty kernel=") + k->name);
  }
}

TEST(MatcherOracle, TruncatedWindowsAndResiduals) {
  // ATE-window truncation and residual (difference) signatures are the two
  // derived shapes the diagnosers feed the matcher; both must still score
  // exactly per-bit after the transformation.
  std::mt19937_64 rng(0xD1FF);
  for (const std::size_t n_outputs : {63, 65}) {
    const std::size_t n_patterns = 301;
    const ErrorSignature a = random_signature(rng, n_patterns, n_outputs, 2);
    const ErrorSignature b = random_signature(rng, n_patterns, n_outputs, 3);
    for (const std::size_t window : {1, 64, 65, 300}) {
      const ErrorSignature obs_w = restrict_signature(a, window);
      const ErrorSignature sim_w = restrict_signature(b, window);
      // restrict_signature keeps the declared shape's pattern count; the
      // oracle iterates the full grid so dropped patterns count as passes.
      const ErrorSignature residual = signature_difference(a, b);
      for (const SimKernel* k : available_kernels()) {
        const std::string what = "outputs=" + std::to_string(n_outputs) +
                                 " window=" + std::to_string(window) +
                                 " kernel=" + k->name;
        expect_equal_counts(SignatureMatcher(obs_w, *k).match(sim_w),
                            naive_match(obs_w, sim_w), what);
        expect_equal_counts(SignatureMatcher(residual, *k).match(b),
                            naive_match(residual, b), what + " residual");
      }
    }
  }
}

TEST(MatcherOracle, DefaultConstructorUsesCurrentKernel) {
  std::mt19937_64 rng(3);
  const ErrorSignature observed = random_signature(rng, 130, 65, 2);
  const ErrorSignature sim = random_signature(rng, 130, 65, 2);
  const SignatureMatcher dflt(observed);
  expect_equal_counts(dflt.match(sim), naive_match(observed, sim), "default");
}

}  // namespace
}  // namespace mdd
