// Unit tests: primitive gate evaluation and the cell library.
#include <gtest/gtest.h>

#include <random>

#include "netlist/cell.hpp"

namespace mdd {
namespace {

TEST(GateKind, Names) {
  EXPECT_EQ(to_string(GateKind::Nand), "NAND");
  EXPECT_EQ(gate_kind_from_string("nand"), GateKind::Nand);
  EXPECT_EQ(gate_kind_from_string("INV"), GateKind::Not);
  EXPECT_EQ(gate_kind_from_string("BUFF"), GateKind::Buf);
  EXPECT_EQ(gate_kind_from_string("TIE1"), GateKind::Const1);
  EXPECT_FALSE(gate_kind_from_string("FOO").has_value());
}

TEST(GateKind, ControllingValues) {
  EXPECT_TRUE(has_controlling_value(GateKind::And));
  EXPECT_FALSE(controlling_value(GateKind::And));
  EXPECT_FALSE(controlling_value(GateKind::Nand));
  EXPECT_TRUE(controlling_value(GateKind::Or));
  EXPECT_TRUE(controlling_value(GateKind::Nor));
  EXPECT_FALSE(has_controlling_value(GateKind::Xor));
  EXPECT_FALSE(has_controlling_value(GateKind::Not));
}

TEST(GateKind, Inversion) {
  EXPECT_TRUE(is_inverting(GateKind::Not));
  EXPECT_TRUE(is_inverting(GateKind::Nand));
  EXPECT_TRUE(is_inverting(GateKind::Nor));
  EXPECT_TRUE(is_inverting(GateKind::Xnor));
  EXPECT_FALSE(is_inverting(GateKind::And));
  EXPECT_FALSE(is_inverting(GateKind::Buf));
}

TEST(EvalGate, ScalarSemantics) {
  EXPECT_FALSE(eval_gate(GateKind::And, {true, false, true}));
  EXPECT_TRUE(eval_gate(GateKind::And, {true, true}));
  EXPECT_TRUE(eval_gate(GateKind::Nand, {true, false}));
  EXPECT_FALSE(eval_gate(GateKind::Nand, {true, true}));
  EXPECT_TRUE(eval_gate(GateKind::Or, {false, true}));
  EXPECT_FALSE(eval_gate(GateKind::Nor, {false, true}));
  EXPECT_TRUE(eval_gate(GateKind::Nor, {false, false}));
  EXPECT_TRUE(eval_gate(GateKind::Xor, {true, false, false}));
  EXPECT_FALSE(eval_gate(GateKind::Xor, {true, true}));
  EXPECT_TRUE(eval_gate(GateKind::Xnor, {true, true}));
  EXPECT_TRUE(eval_gate(GateKind::Buf, {true}));
  EXPECT_FALSE(eval_gate(GateKind::Not, {true}));
  EXPECT_FALSE(eval_gate(GateKind::Const0, {}));
  EXPECT_TRUE(eval_gate(GateKind::Const1, {}));
}

class GateWordProperty : public ::testing::TestWithParam<GateKind> {};

/// Property: word-parallel evaluation agrees with scalar evaluation on
/// every bit position, for random operand words and arities.
TEST_P(GateWordProperty, MatchesScalarPerBit) {
  const GateKind kind = GetParam();
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t arity =
        (kind == GateKind::Buf || kind == GateKind::Not) ? 1 : 2 + rng() % 3;
    std::vector<Word> words(arity);
    for (Word& w : words) w = rng();
    const Word out = eval_gate_word(kind, words.data(), arity);
    for (unsigned bit = 0; bit < 64; ++bit) {
      std::vector<bool> ins(arity);
      for (std::size_t i = 0; i < arity; ++i)
        ins[i] = (words[i] >> bit) & 1u;
      ASSERT_EQ((out >> bit) & 1u, eval_gate(kind, ins) ? 1u : 0u)
          << to_string(kind) << " bit " << bit;
    }
  }
}

/// Property: dual-rail evaluation agrees with scalar two-valued evaluation
/// when all inputs are binary, and is conservative (never asserts a binary
/// value that some completion of the X inputs contradicts).
TEST_P(GateWordProperty, DualRailBinaryAgreesAndXConservative) {
  const GateKind kind = GetParam();
  std::mt19937_64 rng(43);
  const Val3 all[3] = {Val3::Zero, Val3::One, Val3::X};
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t arity =
        (kind == GateKind::Buf || kind == GateKind::Not) ? 1 : 2 + rng() % 2;
    std::vector<DualWord> ins(arity, DualWord::all_x());
    std::vector<std::vector<Val3>> scalar(arity, std::vector<Val3>(64));
    for (std::size_t i = 0; i < arity; ++i)
      for (unsigned bit = 0; bit < 64; ++bit) {
        scalar[i][bit] = all[rng() % 3];
        dw_set(ins[i], bit, scalar[i][bit]);
      }
    const DualWord out = eval_gate_dual(kind, ins.data(), arity);
    for (unsigned bit = 0; bit < 64; ++bit) {
      const Val3 got = dw_get(out, bit);
      if (got == Val3::X) continue;  // conservative is always allowed
      // All binary completions of X inputs must give the same result.
      std::vector<std::size_t> x_positions;
      for (std::size_t i = 0; i < arity; ++i)
        if (scalar[i][bit] == Val3::X) x_positions.push_back(i);
      ASSERT_LE(x_positions.size(), 6u);
      for (std::size_t m = 0; m < (std::size_t{1} << x_positions.size());
           ++m) {
        std::vector<bool> b(arity);
        for (std::size_t i = 0; i < arity; ++i)
          b[i] = scalar[i][bit] == Val3::One;
        for (std::size_t j = 0; j < x_positions.size(); ++j)
          b[x_positions[j]] = (m >> j) & 1u;
        ASSERT_EQ(eval_gate(kind, b), v3_to_bool(got))
            << to_string(kind) << " bit " << bit;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GateWordProperty,
                         ::testing::Values(GateKind::Buf, GateKind::Not,
                                           GateKind::And, GateKind::Nand,
                                           GateKind::Or, GateKind::Nor,
                                           GateKind::Xor, GateKind::Xnor),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(CellModel, Aoi21Truth) {
  const CellLibrary lib;
  const CellModel* aoi = lib.find("AOI21");
  ASSERT_NE(aoi, nullptr);
  EXPECT_EQ(aoi->n_inputs(), 3u);
  for (std::uint32_t m = 0; m < 8; ++m) {
    const bool a0 = m & 1, a1 = (m >> 1) & 1, b = (m >> 2) & 1;
    EXPECT_EQ(aoi->eval_minterm(m), !((a0 && a1) || b)) << "m=" << m;
  }
}

TEST(CellModel, Mux2Truth) {
  const CellLibrary lib;
  const CellModel* mux = lib.find("MUX2");
  ASSERT_NE(mux, nullptr);
  for (std::uint32_t m = 0; m < 8; ++m) {
    const bool d0 = m & 1, d1 = (m >> 1) & 1, s = (m >> 2) & 1;
    EXPECT_EQ(mux->eval_minterm(m), s ? d1 : d0) << "m=" << m;
  }
}

TEST(CellModel, Maj3Truth) {
  const CellLibrary lib;
  const CellModel* maj = lib.find("MAJ3");
  ASSERT_NE(maj, nullptr);
  for (std::uint32_t m = 0; m < 8; ++m) {
    const int pop = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
    EXPECT_EQ(maj->eval_minterm(m), pop >= 2) << "m=" << m;
  }
}

/// Every built-in library cell's decomposition matches its truth table by
/// construction; spot-check via the public eval() path as well.
TEST(CellLibrary, AllCellsEvalConsistent) {
  const CellLibrary lib;
  EXPECT_GE(lib.names().size(), 20u);
  for (const std::string& name : lib.names()) {
    const CellModel* cell = lib.find(name);
    ASSERT_NE(cell, nullptr) << name;
    for (std::uint32_t m = 0; m < (1u << cell->n_inputs()); ++m) {
      std::vector<bool> ins(cell->n_inputs());
      for (std::uint32_t i = 0; i < cell->n_inputs(); ++i)
        ins[i] = (m >> i) & 1u;
      ASSERT_EQ(cell->eval(ins), cell->eval_minterm(m)) << name;
    }
  }
}

/// Property: from_truth_table synthesizes a decomposition whose derived
/// truth table equals the requested one, for random tables of 1..4 inputs.
TEST(CellModel, FromTruthTableRoundTrip) {
  std::mt19937_64 rng(7);
  for (std::uint32_t n = 1; n <= 4; ++n) {
    for (int iter = 0; iter < 25; ++iter) {
      const std::uint64_t mask =
          (n == 4 && false) ? kAllOne : ((std::uint64_t{1} << (1u << n)) - 1);
      const std::uint64_t truth = rng() & mask;
      const CellModel cell =
          CellModel::from_truth_table("T", n, truth);
      for (std::uint32_t m = 0; m < (1u << n); ++m)
        ASSERT_EQ(cell.eval_minterm(m), ((truth >> m) & 1u) != 0)
            << "n=" << n << " truth=" << truth << " m=" << m;
    }
  }
}

TEST(CellModel, RejectsBadConstruction) {
  EXPECT_THROW(CellModel("bad", 9, {{GateKind::Buf, {0}}}),
               std::invalid_argument);
  EXPECT_THROW(CellModel("bad", 2, {}), std::invalid_argument);
  // Forward reference: op 0 referencing op 1's output.
  EXPECT_THROW(CellModel("bad", 1, {{GateKind::Buf, {2}}}),
               std::invalid_argument);
}

TEST(CellLibrary, AddAndReplace) {
  CellLibrary lib;
  const std::size_t before = lib.names().size();
  lib.add(CellModel::from_truth_table("CUSTOM", 2, 0b0110));
  EXPECT_EQ(lib.names().size(), before + 1);
  const CellModel* c = lib.find("CUSTOM");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->eval({true, false}));
  EXPECT_FALSE(c->eval({true, true}));
  // Replace keeps the name list stable.
  lib.add(CellModel::from_truth_table("CUSTOM", 2, 0b1001));
  EXPECT_EQ(lib.names().size(), before + 1);
  EXPECT_TRUE(lib.find("CUSTOM")->eval({true, true}));
}

}  // namespace
}  // namespace mdd
