// Store-backed serving: a daemon pointed at a prebuilt dictionary store
// must answer its FIRST diagnose with store lookups instead of a full
// per-candidate simulation pass, byte-identical to the storeless path —
// the cold-start contract. Corrupt or mismatched store files degrade to
// plain serving (logged + counted), never to an error response.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fsim/fsim.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"
#include "obs/metrics.hpp"
#include "server/service.hpp"
#include "store/journal.hpp"
#include "store/refresh.hpp"
#include "store/writer.hpp"
#include "workload/textio.hpp"

namespace mdd::server {
namespace {

struct StoreServiceFixture {
  std::string netlist_path;
  std::string patterns_path;
  std::string datalog_text;
  std::string store_dir;
  std::string store_file;

  static StoreServiceFixture make(const std::string& tag) {
    const Netlist netlist = make_named_circuit("g200");
    const PatternSet patterns =
        PatternSet::random(128, netlist.n_inputs(), 0x5EED);
    FaultSimulator fsim(netlist, patterns);
    const std::vector<Fault> defect{
        Fault::stem_sa(netlist.n_nets() / 3, false),
        Fault::stem_sa(netlist.n_nets() / 2, true)};
    const Datalog log = datalog_from_defect(netlist, defect, patterns,
                                            fsim.good_response());
    EXPECT_TRUE(log.has_failures());

    StoreServiceFixture f;
    const std::string base = ::testing::TempDir() + "storesvc_" + tag;
    f.netlist_path = base + ".bench";
    f.patterns_path = base + ".patterns";
    f.store_dir = base + ".store";
    std::ofstream(f.netlist_path) << write_bench_string(netlist);
    write_patterns_file(f.patterns_path, patterns);
    std::ostringstream dl;
    write_datalog(dl, log, netlist);
    f.datalog_text = dl.str();

    // Build the store exactly the way `openmdd dict build` does: from the
    // files on disk. The service hashes what it parses, so the store must
    // be keyed on the re-parsed netlist (bench round-trips renumber nets).
    std::filesystem::create_directories(f.store_dir);
    const Netlist reparsed = parse_bench_file(f.netlist_path).netlist;
    const PatternSet repat = read_patterns_file(f.patterns_path);
    f.store_file = store::store_path_for(f.store_dir, reparsed, repat);
    const store::DictWriter writer(reparsed, repat);
    writer.write(f.store_file, store::default_store_universe(reparsed));
    return f;
  }

  Json diagnose_request(const std::string& method) const {
    Json r;
    r.set("op", "diagnose");
    r.set("netlist", netlist_path);
    r.set("patterns", patterns_path);
    r.set("datalog", datalog_text);
    r.set("method", method);
    return r;
  }
};

std::string reports_dump(const Json& response) {
  const Json* reports = response.find("reports");
  EXPECT_NE(reports, nullptr);
  return reports == nullptr ? std::string() : reports->dump();
}

ServiceOptions with_store(const StoreServiceFixture& f) {
  ServiceOptions o;
  o.store_dir = f.store_dir;
  return o;
}

TEST(StoreService, FirstDiagnoseIsStoreServedAndByteIdentical) {
  const StoreServiceFixture f = StoreServiceFixture::make("cold");

  // The storeless daemon is the reference ("cold path").
  DiagnosisService plain;
  const Json reference = plain.handle(f.diagnose_request("all"));
  ASSERT_EQ(reference.get_string("status"), "ok");

  // Fresh service, prebuilt store: the very first diagnose — a restart's
  // cold start — must already be served from the store...
  DiagnosisService stored(with_store(f));
  const Json first = stored.handle(f.diagnose_request("all"));
  ASSERT_EQ(first.get_string("status"), "ok");
  EXPECT_EQ(reports_dump(first), reports_dump(reference));

  // ...visible in the stats: the session attached the store, the
  // signature memo counted disk hits, nothing was simulated for covered
  // candidates (solo computes happen only for store misses).
  const Json stats = stored.stats_json();
  const Json* store_stats = stats.find("store");
  ASSERT_NE(store_stats, nullptr);
  EXPECT_TRUE(store_stats->get_bool("enabled"));
  EXPECT_EQ(store_stats->get_number("sessions", 0), 1);
  EXPECT_GT(store_stats->get_number("hits", 0), 0);
  EXPECT_GT(store_stats->get_number("bytes_mapped", 0), 0);

  const auto& session = *stored.cache().get(f.netlist_path, f.patterns_path);
  ASSERT_NE(session.dict, nullptr);
  ASSERT_TRUE(session.memo->has_store());
  EXPECT_GT(session.memo->stats().store_hits, 0u);
}

TEST(StoreService, StoreServedFirstRequestSkipsCoveredSimulation) {
  const StoreServiceFixture f = StoreServiceFixture::make("warm");
  // Parallel warm enabled: without a store the first request simulates
  // every candidate. With one, covered candidates come from the mmap.
  auto computes_for = [&](const ServiceOptions& options) {
    DiagnosisService service(options);
    const std::uint64_t before =
        obs::registry().counter("diag.solo_computes").value();
    const Json r = service.handle(f.diagnose_request("multiplet"));
    EXPECT_EQ(r.get_string("status"), "ok");
    return obs::registry().counter("diag.solo_computes").value() - before;
  };

  ServiceOptions storeless;
  storeless.exec = ExecPolicy::parallel(2);
  const std::uint64_t cold_computes = computes_for(storeless);

  ServiceOptions stored_options = with_store(f);
  stored_options.exec = ExecPolicy::parallel(2);
  DiagnosisService stored(stored_options);
  const std::uint64_t before =
      obs::registry().counter("diag.solo_computes").value();
  ASSERT_EQ(stored.handle(f.diagnose_request("multiplet")).get_string("status"),
            "ok");
  const std::uint64_t stored_computes =
      obs::registry().counter("diag.solo_computes").value() - before;

  const auto& session = *stored.cache().get(f.netlist_path, f.patterns_path);
  const SignatureMemoStats ms = session.memo->stats();
  // Extractor-invented bridge pairings outside the sampled store universe
  // still simulate; every stored candidate must not. The store-served
  // first request therefore does strictly less simulation — by at least
  // the number of store answers.
  EXPECT_GT(ms.store_hits, 0u);
  EXPECT_LE(stored_computes + ms.store_hits, cold_computes);
}

TEST(StoreService, CorruptStoreFileDegradesToPlainServing) {
  const StoreServiceFixture f = StoreServiceFixture::make("corrupt");
  {
    // Flip one payload byte: open-time content hashing must reject it.
    std::fstream file(f.store_file,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    file.seekp(size / 2);
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte ^= 0x10;
    file.seekp(size / 2);
    file.write(&byte, 1);
  }

  DiagnosisService plain;
  const Json reference = plain.handle(f.diagnose_request("all"));

  const std::uint64_t failures_before =
      obs::registry().counter("store.attach_failures").value();
  DiagnosisService stored(with_store(f));
  const Json served = stored.handle(f.diagnose_request("all"));
  ASSERT_EQ(served.get_string("status"), "ok")
      << "a corrupt store must never fail a request";
  EXPECT_EQ(reports_dump(served), reports_dump(reference));
  EXPECT_GT(obs::registry().counter("store.attach_failures").value(),
            failures_before);

  const Json stats = stored.stats_json();
  const Json* store_stats = stats.find("store");
  ASSERT_NE(store_stats, nullptr);
  EXPECT_TRUE(store_stats->get_bool("enabled"));
  EXPECT_EQ(store_stats->get_number("sessions", -1), 0)
      << "the corrupt file must not be attached";
  const auto& session = *stored.cache().get(f.netlist_path, f.patterns_path);
  EXPECT_EQ(session.dict, nullptr);
  EXPECT_FALSE(session.memo->has_store());
}

TEST(StoreService, AbsentStoreFileIsSilentlyStoreless) {
  const StoreServiceFixture f = StoreServiceFixture::make("absent");
  std::filesystem::remove(f.store_file);
  const std::uint64_t failures_before =
      obs::registry().counter("store.attach_failures").value();
  DiagnosisService stored(with_store(f));
  const Json r = stored.handle(f.diagnose_request("single"));
  EXPECT_EQ(r.get_string("status"), "ok");
  EXPECT_EQ(obs::registry().counter("store.attach_failures").value(),
            failures_before)
      << "an absent file is the normal case, not a failure";
}

TEST(StoreService, PingAndStatsReportStoreStatusAndUniformMemoShapes) {
  const StoreServiceFixture f = StoreServiceFixture::make("status");
  DiagnosisService stored(with_store(f));

  Json ping;
  ping.set("op", "ping");
  const Json pong = stored.handle(ping);
  const Json* ping_store = pong.find("store");
  ASSERT_NE(ping_store, nullptr);
  EXPECT_TRUE(ping_store->get_bool("enabled"));
  EXPECT_EQ(ping_store->get_string("dir"), f.store_dir);
  EXPECT_EQ(ping_store->get_number("format_version", 0),
            store::kFormatVersion);

  (void)stored.handle(f.diagnose_request("multiplet"));
  const Json stats = stored.stats_json();
  const Json* memos = stats.find("memos");
  ASSERT_NE(memos, nullptr);
  // Satellite contract: every memo layer reports the same shape.
  for (const char* layer : {"signature", "trace", "composite"}) {
    const Json* m = memos->find(layer);
    ASSERT_NE(m, nullptr) << layer;
    for (const char* field :
         {"hits", "misses", "evictions", "entries", "bytes"})
      EXPECT_NE(m->find(field), nullptr) << layer << "." << field;
  }
  EXPECT_NE(memos->find("signature")->find("store_hits"), nullptr);

  // A storeless service reports the store section as disabled.
  DiagnosisService plain;
  const Json plain_stats = plain.stats_json();
  const Json* plain_store = plain_stats.find("store");
  ASSERT_NE(plain_store, nullptr);
  EXPECT_FALSE(plain_store->get_bool("enabled"));
}

// The ISSUE acceptance test for workload-learned universes. Pass 1 on a
// multiplet case leaves extractor-invented candidates (dominant bridges
// the sampled universe lacks) in the store-miss journal; `dict refresh`
// folds them in; a cold restart must then store-serve at least 80% of
// the extracted candidates with byte-identical reports.
TEST(StoreService, JournaledMissesFoldBackAndCloseTheCoverageGap) {
  const StoreServiceFixture f = StoreServiceFixture::make("learned");
  const Netlist reparsed = parse_bench_file(f.netlist_path).netlist;
  const PatternSet repat = read_patterns_file(f.patterns_path);
  const std::uint64_t nh = store::netlist_content_hash(reparsed);
  const std::uint64_t ph = store::patterns_content_hash(repat);
  const std::string journal_path =
      store::journal_path_for(f.store_dir, reparsed, repat);

  std::string first_reports;
  double n_candidates1 = 0;
  double solo1 = 0;
  {
    DiagnosisService stored(with_store(f));
    const Json first = stored.handle(f.diagnose_request("multiplet"));
    ASSERT_EQ(first.get_string("status"), "ok");
    first_reports = reports_dump(first);
    n_candidates1 = first.get_number("n_candidates", 0);
    solo1 = first.get_number("solo_computes", -1);
    ASSERT_GT(n_candidates1, 0);
    ASSERT_GT(solo1, 0) << "fixture must produce store misses to learn from";
  }  // service closed: the journal is flushed and released

  // The serving pass recorded every store-missed candidate it had to
  // simulate — and nothing else.
  const store::JournalContents journal =
      store::read_journal(journal_path, nh, ph);
  ASSERT_FALSE(journal.faults.empty());
  EXPECT_EQ(journal.faults.size(), static_cast<std::size_t>(solo1));

  // `openmdd dict refresh` between passes.
  const store::RefreshStats refresh =
      store::refresh_store(reparsed, repat, f.store_dir);
  EXPECT_EQ(refresh.n_new, journal.faults.size());
  EXPECT_TRUE(refresh.wrote);
  EXPECT_FALSE(refresh.rebuilt);

  // Cold restart: same request, byte-identical answer, and the learned
  // universe now covers >= 80% of the extracted candidates.
  DiagnosisService restarted(with_store(f));
  const Json second = restarted.handle(f.diagnose_request("multiplet"));
  ASSERT_EQ(second.get_string("status"), "ok");
  EXPECT_EQ(reports_dump(second), first_reports);
  const double n_candidates2 = second.get_number("n_candidates", 0);
  const double solo2 = second.get_number("solo_computes", -1);
  EXPECT_GT(n_candidates2, 0);
  EXPECT_LT(solo2, solo1);
  EXPECT_LE(solo2, 0.2 * n_candidates2)
      << "after the fold, at least 80% of candidates must be store-served";
}

TEST(StoreService, BackgroundRefreshFoldsJournalWithoutRestart) {
  const StoreServiceFixture f = StoreServiceFixture::make("bgrefresh");
  ServiceOptions options = with_store(f);
  options.store_refresh_threshold = 1;  // every journaled fault triggers
  DiagnosisService service(options);

  const Json first = service.handle(f.diagnose_request("multiplet"));
  ASSERT_EQ(first.get_string("status"), "ok");
  ASSERT_GT(first.get_number("solo_computes", 0), 0)
      << "fixture must produce store misses to learn from";

  // The maintenance thread polls every 200 ms. A round that wakes while
  // the diagnose is still journaling folds a partial snapshot — the
  // remainder survives for the next round by design — so wait until the
  // journal fully drains, not just for the first refresh. Generous
  // deadline: sanitizer builds fold slowly.
  const auto& session = *service.cache().get(f.netlist_path, f.patterns_path);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  double refreshes = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const Json stats = service.stats_json();
    const Json* store_stats = stats.find("store");
    ASSERT_NE(store_stats, nullptr);
    refreshes = store_stats->get_number("refreshes", 0);
    if (refreshes > 0 && session.journal->pending() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_GT(refreshes, 0) << "background refresh never ran";

  // Folded: the journal drained, and the session's serving reader was
  // swapped for the merged store — without dropping the session.
  EXPECT_EQ(session.journal->pending(), 0u);
  ASSERT_NE(session.dict, nullptr);
  ASSERT_TRUE(session.memo->has_store());
  EXPECT_GT(session.memo->store_reader()->n_entries(),
            session.dict->n_entries())
      << "the swapped reader must hold the learned faults";

  // The same request again answers byte-identically off the new reader.
  const Json second = service.handle(f.diagnose_request("multiplet"));
  ASSERT_EQ(second.get_string("status"), "ok");
  EXPECT_EQ(reports_dump(second), reports_dump(first));
  EXPECT_EQ(second.get_number("solo_computes", -1), 0)
      << "every learned candidate must now be store-served";
}

TEST(StoreService, CorruptSidecarsFailOpenAndNeverFailADiagnosis) {
  const StoreServiceFixture f = StoreServiceFixture::make("sidecars");
  const Netlist reparsed = parse_bench_file(f.netlist_path).netlist;
  const PatternSet repat = read_patterns_file(f.patterns_path);
  std::ofstream(store::journal_path_for(f.store_dir, reparsed, repat))
      << "mddj9 garbage header\n";
  std::ofstream(store::spill_path_for(f.store_dir, reparsed, repat))
      << "not a spill file";

  DiagnosisService plain;
  const Json reference = plain.handle(f.diagnose_request("multiplet"));
  ASSERT_EQ(reference.get_string("status"), "ok");

  DiagnosisService stored(with_store(f));
  const Json served = stored.handle(f.diagnose_request("multiplet"));
  ASSERT_EQ(served.get_string("status"), "ok")
      << "corrupt sidecars must never fail a request";
  EXPECT_EQ(reports_dump(served), reports_dump(reference));

  const auto& session = *stored.cache().get(f.netlist_path, f.patterns_path);
  ASSERT_NE(session.journal, nullptr);
  ASSERT_NE(session.spill, nullptr);
  EXPECT_TRUE(session.journal->detached());
  EXPECT_TRUE(session.spill->detached());
  const Json stats = stored.stats_json();
  const Json* store_stats = stats.find("store");
  ASSERT_NE(store_stats, nullptr);
  const Json* journal_stats = store_stats->find("journal");
  ASSERT_NE(journal_stats, nullptr);
  EXPECT_EQ(journal_stats->get_number("sessions", -1), 0)
      << "a detached journal must not count as live";
}

}  // namespace
}  // namespace mdd::server
