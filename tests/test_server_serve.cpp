// Transport-layer tests: a client that disconnects mid-request must leave
// a counted, logged connection error (the original code swallowed the
// failed write in an empty catch — and worse, an unhandled SIGPIPE on the
// raw ::write could kill the whole daemon), malformed request lines move
// the parse-error counter, and the Prometheus endpoint serves a parseable
// exposition over plain HTTP. Builds into the tsan-labelled binary.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <future>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "server/metrics_http.hpp"
#include "server/serve.hpp"
#include "server/service.hpp"

namespace mdd::server {
namespace {

std::uint64_t counter_value(const std::string& name) {
  return obs::registry().counter(name).value();
}

/// serve_tcp on an ephemeral port in a background thread; joins on scope
/// exit (the test sends {"op":"shutdown"} to unblock it).
struct TcpServerFixture {
  DiagnosisService service;
  std::ostringstream log;
  std::uint16_t port = 0;
  std::thread thread;

  TcpServerFixture() {
    std::promise<std::uint16_t> bound;
    auto bound_future = bound.get_future();
    thread = std::thread([this, &bound] {
      serve_tcp(service, 0, log,
                [&bound](std::uint16_t p) { bound.set_value(p); });
    });
    port = bound_future.get();
  }

  ~TcpServerFixture() {
    if (thread.joinable()) thread.join();
  }

  void shutdown() {
    TcpLineClient client("127.0.0.1", port);
    client.roundtrip("{\"op\":\"shutdown\"}");
  }
};

TEST(ServeTcp, ClientGoneMidRequestIsCountedAndLogged) {
  TcpServerFixture server;
  const std::uint64_t errors_before =
      counter_value("server.connection_errors");

  {
    // Raw client: submit a slow request, then close with SO_LINGER{1,0}
    // so the kernel sends RST — by the time the worker finishes and
    // writes the response, the connection is dead and the write fails.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    const std::string request = "{\"op\":\"sleep\",\"ms\":300}\n";
    ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const linger hard_close{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close, sizeof hard_close);
    ::close(fd);
  }

  // The worker is still sleeping; wait for it to finish, fail the write,
  // and count the error.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (counter_value("server.connection_errors") == errors_before &&
         std::chrono::steady_clock::now() < give_up)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GT(counter_value("server.connection_errors"), errors_before)
      << "a failed response write must be counted, not swallowed";

  server.shutdown();
  server.thread.join();  // log is single-owner again after the join
  EXPECT_NE(server.log.str().find("connection_error"), std::string::npos)
      << "log was:\n"
      << server.log.str();
}

TEST(ServeTcp, MalformedLineAnswersErrorAndCountsParseError) {
  TcpServerFixture server;
  const std::uint64_t parse_before = counter_value("server.parse_errors");
  {
    TcpLineClient client("127.0.0.1", server.port);
    const std::string response = client.roundtrip("this is not json");
    EXPECT_NE(response.find("\"error\""), std::string::npos);
  }
  EXPECT_GT(counter_value("server.parse_errors"), parse_before);
  server.shutdown();
}

TEST(MetricsHttp, ServesPrometheusExposition) {
  obs::registry().counter("obs_test.http_probe").inc(41);
  std::ostringstream log;
  MetricsHttpServer server(0, log);
  ASSERT_GT(server.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t r = ::recv(fd, chunk, sizeof chunk, 0);
    if (r <= 0) break;
    response.append(chunk, static_cast<std::size_t>(r));
  }
  ::close(fd);
  server.stop();

  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  // Dotted registry names arrive underscored, with a TYPE line each.
  EXPECT_NE(response.find("# TYPE obs_test_http_probe counter"),
            std::string::npos);
  EXPECT_NE(response.find("obs_test_http_probe 41"), std::string::npos);
}

}  // namespace
}  // namespace mdd::server
