// Transport-layer tests: a client that disconnects mid-request must leave
// a counted, logged connection error (the original code swallowed the
// failed write in an empty catch — and worse, an unhandled SIGPIPE on the
// raw ::write could kill the whole daemon), malformed request lines move
// the parse-error counter, and the Prometheus endpoint serves a parseable
// exposition over plain HTTP. Builds into the tsan-labelled binary.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <future>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "server/metrics_http.hpp"
#include "server/serve.hpp"
#include "server/service.hpp"

namespace mdd::server {
namespace {

std::uint64_t counter_value(const std::string& name) {
  return obs::registry().counter(name).value();
}

/// serve_tcp on an ephemeral port in a background thread; joins on scope
/// exit (the test sends {"op":"shutdown"} to unblock it).
struct TcpServerFixture {
  DiagnosisService service;
  std::ostringstream log;
  std::uint16_t port = 0;
  std::thread thread;

  TcpServerFixture() {
    std::promise<std::uint16_t> bound;
    auto bound_future = bound.get_future();
    thread = std::thread([this, &bound] {
      serve_tcp(service, 0, log,
                [&bound](std::uint16_t p) { bound.set_value(p); });
    });
    port = bound_future.get();
  }

  ~TcpServerFixture() {
    if (thread.joinable()) thread.join();
  }

  void shutdown() {
    TcpLineClient client("127.0.0.1", port);
    client.roundtrip("{\"op\":\"shutdown\"}");
  }
};

TEST(ServeTcp, ClientGoneMidRequestIsCountedAndLogged) {
  TcpServerFixture server;
  const std::uint64_t errors_before =
      counter_value("server.connection_errors");

  {
    // Raw client: submit a slow request, then close with SO_LINGER{1,0}
    // so the kernel sends RST — by the time the worker finishes and
    // writes the response, the connection is dead and the write fails.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    const std::string request = "{\"op\":\"sleep\",\"ms\":300}\n";
    ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const linger hard_close{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close, sizeof hard_close);
    ::close(fd);
  }

  // The worker is still sleeping; wait for it to finish, fail the write,
  // and count the error.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (counter_value("server.connection_errors") == errors_before &&
         std::chrono::steady_clock::now() < give_up)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GT(counter_value("server.connection_errors"), errors_before)
      << "a failed response write must be counted, not swallowed";

  server.shutdown();
  server.thread.join();  // log is single-owner again after the join
  EXPECT_NE(server.log.str().find("connection_error"), std::string::npos)
      << "log was:\n"
      << server.log.str();
}

TEST(ServeTcp, MalformedLineAnswersErrorAndCountsParseError) {
  TcpServerFixture server;
  const std::uint64_t parse_before = counter_value("server.parse_errors");
  {
    TcpLineClient client("127.0.0.1", server.port);
    const std::string response = client.roundtrip("this is not json");
    EXPECT_NE(response.find("\"error\""), std::string::npos);
  }
  EXPECT_GT(counter_value("server.parse_errors"), parse_before);
  server.shutdown();
}

TEST(ServeTcp, PingBypassesABusyQueue) {
  // Pings are answered on the connection's reader thread, ahead of the
  // work queue — the router's heartbeat must measure process liveness,
  // so a daemon saturated with slow work still answers promptly.
  TcpServerFixture server;
  TcpLineClient busy("127.0.0.1", server.port);
  busy.send_line("{\"op\":\"sleep\",\"ms\":2000}");
  busy.send_line("{\"op\":\"sleep\",\"ms\":2000}");

  TcpLineClient prober("127.0.0.1", server.port);
  const auto t0 = std::chrono::steady_clock::now();
  const std::string response = prober.roundtrip("{\"op\":\"ping\"}");
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_NE(response.find("\"op\":\"ping\""), std::string::npos) << response;
  EXPECT_LT(elapsed, 1000.0)
      << "ping waited behind the queue instead of jumping it";

  // Drain the sleeps so shutdown is quick and deterministic.
  EXPECT_NE(busy.recv_line().find("\"ok\""), std::string::npos);
  EXPECT_NE(busy.recv_line().find("\"ok\""), std::string::npos);
  server.shutdown();
}

TEST(ServeTcp, UdsTransportRoundTrips) {
  DiagnosisService service;
  std::ostringstream log;
  const std::string path =
      ::testing::TempDir() + "mdd_uds_" + std::to_string(::getpid()) +
      ".sock";
  std::promise<std::string> bound;
  auto bound_future = bound.get_future();
  std::thread thread([&] {
    serve_uds(service, path, log,
              [&bound](const std::string& p) { bound.set_value(p); });
  });
  ASSERT_EQ(bound_future.get(), path);
  {
    UdsLineClient client(path);
    const std::string response = client.roundtrip("{\"op\":\"ping\"}");
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
        << response;
  }
  {
    UdsLineClient client(path);
    client.roundtrip("{\"op\":\"shutdown\"}");
  }
  thread.join();
}

namespace {

/// One blocking HTTP GET against the metrics endpoint.
std::string http_get(std::uint16_t port) {
  const int fd = connect_tcp_fd("127.0.0.1", port);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return {};
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t r = ::recv(fd, chunk, sizeof chunk, 0);
    if (r <= 0) break;
    response.append(chunk, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return response;
}

}  // namespace

TEST(MetricsHttp, IdleClientIsCutOffAndScrapingContinues) {
  // Regression: the single-threaded responder used to block in recv()
  // on a client that connected and sent nothing — one such client wedged
  // scraping (and stop()) forever. Now it is cut off at the poll
  // deadline, counted, and the next scrape is served normally.
  std::ostringstream log;
  MetricsHttpServer server(0, log);
  server.set_io_timeout_ms(100);
  const std::uint64_t slow_before = counter_value("metrics.slow_clients");

  const int idle_fd = connect_tcp_fd("127.0.0.1", server.port());
  char byte;
  const ssize_t r = ::recv(idle_fd, &byte, 1, 0);  // until the cutoff
  EXPECT_EQ(r, 0) << "idle client should be dropped, not served";
  ::close(idle_fd);
  EXPECT_GT(counter_value("metrics.slow_clients"), slow_before);

  const std::string response = http_get(server.port());
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos)
      << "scraping must survive a hostile client";
  server.stop();
}

TEST(MetricsHttp, BodyProviderReplacesRegistryExposition) {
  std::ostringstream log;
  MetricsHttpServer server(0, log, {},
                           [] { return std::string("router_series 7\n"); });
  const std::string response = http_get(server.port());
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("router_series 7"), std::string::npos);
  server.stop();
}

TEST(MetricsHttp, ServesPrometheusExposition) {
  obs::registry().counter("obs_test.http_probe").inc(41);
  std::ostringstream log;
  MetricsHttpServer server(0, log);
  ASSERT_GT(server.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t r = ::recv(fd, chunk, sizeof chunk, 0);
    if (r <= 0) break;
    response.append(chunk, static_cast<std::size_t>(r));
  }
  ::close(fd);
  server.stop();

  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  // Dotted registry names arrive underscored, with a TYPE line each.
  EXPECT_NE(response.find("# TYPE obs_test_http_probe counter"),
            std::string::npos);
  EXPECT_NE(response.find("obs_test_http_probe 41"), std::string::npos);
}

}  // namespace
}  // namespace mdd::server
