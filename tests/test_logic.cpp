// Unit tests: 3-valued scalar algebra and dual-rail word encoding.
#include <gtest/gtest.h>

#include <random>

#include "netlist/logic.hpp"

namespace mdd {
namespace {

TEST(Val3, NotTruthTable) {
  EXPECT_EQ(v3_not(Val3::Zero), Val3::One);
  EXPECT_EQ(v3_not(Val3::One), Val3::Zero);
  EXPECT_EQ(v3_not(Val3::X), Val3::X);
}

TEST(Val3, AndKleene) {
  EXPECT_EQ(v3_and(Val3::Zero, Val3::X), Val3::Zero);
  EXPECT_EQ(v3_and(Val3::X, Val3::Zero), Val3::Zero);
  EXPECT_EQ(v3_and(Val3::One, Val3::One), Val3::One);
  EXPECT_EQ(v3_and(Val3::One, Val3::X), Val3::X);
  EXPECT_EQ(v3_and(Val3::X, Val3::X), Val3::X);
  EXPECT_EQ(v3_and(Val3::Zero, Val3::Zero), Val3::Zero);
}

TEST(Val3, OrKleene) {
  EXPECT_EQ(v3_or(Val3::One, Val3::X), Val3::One);
  EXPECT_EQ(v3_or(Val3::X, Val3::One), Val3::One);
  EXPECT_EQ(v3_or(Val3::Zero, Val3::Zero), Val3::Zero);
  EXPECT_EQ(v3_or(Val3::Zero, Val3::X), Val3::X);
  EXPECT_EQ(v3_or(Val3::X, Val3::X), Val3::X);
}

TEST(Val3, XorPropagatesX) {
  EXPECT_EQ(v3_xor(Val3::X, Val3::Zero), Val3::X);
  EXPECT_EQ(v3_xor(Val3::One, Val3::X), Val3::X);
  EXPECT_EQ(v3_xor(Val3::One, Val3::Zero), Val3::One);
  EXPECT_EQ(v3_xor(Val3::One, Val3::One), Val3::Zero);
  EXPECT_EQ(v3_xor(Val3::Zero, Val3::Zero), Val3::Zero);
}

TEST(Val3, Conversions) {
  EXPECT_TRUE(v3_is_binary(Val3::Zero));
  EXPECT_TRUE(v3_is_binary(Val3::One));
  EXPECT_FALSE(v3_is_binary(Val3::X));
  EXPECT_EQ(v3_from_bool(true), Val3::One);
  EXPECT_EQ(v3_from_bool(false), Val3::Zero);
  EXPECT_TRUE(v3_to_bool(Val3::One));
  EXPECT_FALSE(v3_to_bool(Val3::Zero));
  EXPECT_EQ(v3_to_char(Val3::X), 'X');
}

TEST(DualWord, Constants) {
  EXPECT_EQ(DualWord::all0().is0, kAllOne);
  EXPECT_EQ(DualWord::all0().is1, kAllZero);
  EXPECT_EQ(DualWord::all1().is1, kAllOne);
  EXPECT_EQ(DualWord::all_x().known(), kAllZero);
}

TEST(DualWord, GetSetRoundTrip) {
  DualWord w = DualWord::all_x();
  dw_set(w, 3, Val3::One);
  dw_set(w, 7, Val3::Zero);
  dw_set(w, 11, Val3::X);
  EXPECT_EQ(dw_get(w, 3), Val3::One);
  EXPECT_EQ(dw_get(w, 7), Val3::Zero);
  EXPECT_EQ(dw_get(w, 11), Val3::X);
  EXPECT_EQ(dw_get(w, 0), Val3::X);
  dw_set(w, 3, Val3::Zero);  // overwrite
  EXPECT_EQ(dw_get(w, 3), Val3::Zero);
}

/// Property: every dual-rail word operation agrees with the scalar 3-valued
/// operation applied position-wise.
TEST(DualWord, OpsMatchScalarProperty) {
  std::mt19937_64 rng(123);
  const Val3 all[3] = {Val3::Zero, Val3::One, Val3::X};
  for (int iter = 0; iter < 50; ++iter) {
    DualWord a = DualWord::all_x(), b = DualWord::all_x();
    for (unsigned bit = 0; bit < 64; ++bit) {
      dw_set(a, bit, all[rng() % 3]);
      dw_set(b, bit, all[rng() % 3]);
    }
    const DualWord land = dw_and(a, b);
    const DualWord lor = dw_or(a, b);
    const DualWord lxor = dw_xor(a, b);
    const DualWord lnot = dw_not(a);
    for (unsigned bit = 0; bit < 64; ++bit) {
      const Val3 va = dw_get(a, bit), vb = dw_get(b, bit);
      ASSERT_EQ(dw_get(land, bit), v3_and(va, vb)) << "bit " << bit;
      ASSERT_EQ(dw_get(lor, bit), v3_or(va, vb)) << "bit " << bit;
      ASSERT_EQ(dw_get(lxor, bit), v3_xor(va, vb)) << "bit " << bit;
      ASSERT_EQ(dw_get(lnot, bit), v3_not(va)) << "bit " << bit;
    }
  }
}

/// Invariant: simulator-produced dual words never have both rails set.
TEST(DualWord, OpsPreserveRailExclusivity) {
  std::mt19937_64 rng(77);
  const Val3 all[3] = {Val3::Zero, Val3::One, Val3::X};
  for (int iter = 0; iter < 50; ++iter) {
    DualWord a = DualWord::all_x(), b = DualWord::all_x();
    for (unsigned bit = 0; bit < 64; ++bit) {
      dw_set(a, bit, all[rng() % 3]);
      dw_set(b, bit, all[rng() % 3]);
    }
    for (const DualWord w :
         {dw_and(a, b), dw_or(a, b), dw_xor(a, b), dw_not(a)}) {
      ASSERT_EQ(w.is0 & w.is1, kAllZero);
    }
  }
}

}  // namespace
}  // namespace mdd
