// Unit tests: error signatures, matching, and the fault simulator.
#include <gtest/gtest.h>

#include <random>

#include "fault/collapse.hpp"
#include "fsim/fsim.hpp"
#include "netlist/generator.hpp"
#include "sim/event_sim.hpp"

namespace mdd {
namespace {

TEST(ErrorSignature, DiffAndAccessors) {
  PatternSet good(3, 2), faulty(3, 2);
  faulty.set(0, 1, true);          // pattern 0: output 1 differs
  faulty.set(2, 0, true);          // pattern 2: output 0 differs
  faulty.set(2, 1, true);          // pattern 2: output 1 differs
  const ErrorSignature sig = ErrorSignature::diff(good, faulty);
  EXPECT_EQ(sig.n_failing_patterns(), 2u);
  EXPECT_EQ(sig.n_error_bits(), 3u);
  EXPECT_EQ(sig.failing_patterns(), (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(sig.failing_outputs(0), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(sig.failing_outputs(1), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_FALSE(sig.mask_of_pattern(0).empty());
  EXPECT_TRUE(sig.mask_of_pattern(1).empty());
  EXPECT_THROW(ErrorSignature::diff(good, PatternSet(2, 2)),
               std::invalid_argument);
}

TEST(ErrorSignature, WideOutputMasks) {
  PatternSet good(1, 130), faulty(1, 130);
  faulty.set(0, 0, true);
  faulty.set(0, 64, true);
  faulty.set(0, 129, true);
  const ErrorSignature sig = ErrorSignature::diff(good, faulty);
  EXPECT_EQ(sig.n_po_words(), 3u);
  EXPECT_EQ(sig.failing_outputs(0),
            (std::vector<std::uint32_t>{0, 64, 129}));
}

TEST(Match, Counts) {
  ErrorSignature obs(10, 4), sim(10, 4);
  const Word m1 = 0b0011, m2 = 0b0110, m3 = 0b1000;
  obs.append(1, {&m1, 1});
  obs.append(5, {&m3, 1});
  sim.append(1, {&m2, 1});
  sim.append(7, {&m1, 1});
  const MatchCounts mc = match(obs, sim);
  // Pattern 1: obs 0011 vs sim 0110 -> tfsf 1 (bit1), tfsp 1 (bit0),
  // tpsf 1 (bit2). Pattern 5: tfsp 1. Pattern 7: tpsf 2.
  EXPECT_EQ(mc.tfsf, 1u);
  EXPECT_EQ(mc.tfsp, 2u);
  EXPECT_EQ(mc.tpsf, 3u);
}

TEST(Match, IdenticalSignatures) {
  ErrorSignature a(10, 4);
  const Word m = 0b1010;
  a.append(3, {&m, 1});
  const MatchCounts mc = match(a, a);
  EXPECT_EQ(mc.tfsf, 2u);
  EXPECT_EQ(mc.tfsp, 0u);
  EXPECT_EQ(mc.tpsf, 0u);
}

TEST(SignatureOps, DifferenceAndRestrict) {
  ErrorSignature a(10, 4), b(10, 4);
  const Word m3 = 0b0011, m1 = 0b0001, m8 = 0b1000;
  a.append(1, {&m3, 1});
  a.append(6, {&m8, 1});
  b.append(1, {&m1, 1});
  const ErrorSignature d = signature_difference(a, b);
  EXPECT_EQ(d.n_failing_patterns(), 2u);
  EXPECT_EQ(d.failing_outputs(0), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(d.failing_outputs(1), (std::vector<std::uint32_t>{3}));
  const ErrorSignature empty_diff = signature_difference(a, a);
  EXPECT_TRUE(empty_diff.empty());

  const ErrorSignature r = restrict_signature(a, 5);
  EXPECT_EQ(r.n_failing_patterns(), 1u);
  EXPECT_EQ(r.failing_patterns().front(), 1u);
}

TEST(FaultSimulator, SignatureMatchesBruteForce) {
  const Netlist nl = make_c17();
  const PatternSet stimuli = PatternSet::exhaustive(5);
  FaultSimulator fsim(nl, stimuli);
  const PatternSet good = simulate(nl, stimuli);
  std::mt19937_64 rng(5);
  for (const Fault& f : all_stuck_at_faults(nl)) {
    const ErrorSignature sig = fsim.signature(f);
    const PatternSet faulty = simulate_with_faults(nl, {&f, 1}, stimuli);
    ASSERT_EQ(sig, ErrorSignature::diff(good, faulty)) << to_string(f, nl);
    ASSERT_EQ(fsim.detects(f), !sig.empty());
    if (!sig.empty()) {
      ASSERT_EQ(fsim.first_detecting_pattern(f),
                std::optional<std::uint32_t>(sig.failing_patterns().front()));
    } else {
      ASSERT_FALSE(fsim.first_detecting_pattern(f).has_value());
    }
  }
}

TEST(FaultSimulator, ExhaustiveCoverageOnC17) {
  const Netlist nl = make_c17();
  const PatternSet stimuli = PatternSet::exhaustive(5);
  FaultSimulator fsim(nl, stimuli);
  const CollapsedFaults cf(nl);
  // c17 has no redundant stuck-at faults: exhaustive coverage is 100%.
  EXPECT_DOUBLE_EQ(fsim.coverage(cf.representatives()), 1.0);
}

TEST(FaultSimulator, CoverageMonotoneInPatterns) {
  const Netlist nl = make_named_circuit("g200");
  const CollapsedFaults cf(nl);
  const PatternSet few = PatternSet::random(8, nl.n_inputs(), 6);
  const PatternSet many = PatternSet::random(256, nl.n_inputs(), 6);
  FaultSimulator fs_few(nl, few), fs_many(nl, many);
  EXPECT_LE(fs_few.coverage(cf.representatives()),
            fs_many.coverage(cf.representatives()) + 1e-12);
}

TEST(FaultSimulator, MultipletSignatureIsComposite) {
  // Masking pair from test_fault: composite != union of solos.
  Netlist nl("mask");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId z = nl.add_gate(GateKind::And, {a, b}, "z");
  nl.mark_output(z);
  nl.finalize();
  const PatternSet stimuli = PatternSet::exhaustive(2);
  FaultSimulator fsim(nl, stimuli);
  const Fault f1 = Fault::stem_sa(a, false);
  const Fault f2 = Fault::stem_sa(z, true);
  const std::vector<Fault> both{f1, f2};
  const ErrorSignature comp = fsim.signature(std::span<const Fault>(both));
  // z SA1 dominates: z always 1, errors where good z == 0 (patterns 0,1,2).
  EXPECT_EQ(comp.n_error_bits(), 3u);
  // The solo union would include pattern 3 (a SA0 flips z) — masked here.
  const ErrorSignature s1 = fsim.signature(f1);
  EXPECT_EQ(s1.failing_patterns(), (std::vector<std::uint32_t>{3}));
  EXPECT_TRUE(comp.mask_of_pattern(3).empty());
}

}  // namespace
}  // namespace mdd
