// Unit tests: transition-fault extension (two-frame simulation, TDF test
// generation, pair-mode diagnosis).
#include <gtest/gtest.h>

#include <random>

#include "atpg/tpg.hpp"
#include "diag/metrics.hpp"
#include "diag/multiplet.hpp"
#include "diag/single_fault.hpp"
#include "netlist/generator.hpp"
#include "workload/campaign.hpp"

namespace mdd {
namespace {

TEST(TransitionFault, Constructors) {
  const Fault str = Fault::slow_to_rise(4);
  EXPECT_TRUE(str.is_transition());
  EXPECT_FALSE(str.is_stuck_at());
  EXPECT_FALSE(str.is_bridge());
  EXPECT_EQ(str.kind, FaultKind::SlowToRise);
  const Netlist nl = make_c17();
  EXPECT_EQ(to_string(Fault::slow_to_rise(nl.find_net("16")), nl), "STR 16");
  EXPECT_NO_THROW(validate_fault(Fault::slow_to_fall(3), nl));
  EXPECT_THROW(validate_fault(Fault::slow_to_rise(1000), nl),
               std::invalid_argument);
}

TEST(TransitionFault, UniverseSize) {
  const Netlist nl = make_c17();
  EXPECT_EQ(all_transition_faults(nl).size(), nl.n_nets() * 2);
}

/// Gross-delay semantics on a buffer: slow-to-rise holds the launch value
/// exactly on rising pairs.
TEST(TransitionFault, GrossDelaySemantics) {
  Netlist nl("buf");
  const NetId a = nl.add_input("a");
  const NetId z = nl.add_gate(GateKind::Buf, {a}, "z");
  nl.mark_output(z);
  nl.finalize();

  // Pairs: (0->0), (0->1), (1->0), (1->1).
  PatternSet launch(4, 1), capture(4, 1);
  launch.set(2, 0, true);
  launch.set(3, 0, true);
  capture.set(1, 0, true);
  capture.set(3, 0, true);

  FaultyMachine fm(nl);
  const Fault str = Fault::slow_to_rise(z);
  fm.set_faults({&str, 1});
  const PatternSet r = fm.simulate_pair(launch, capture);
  EXPECT_FALSE(r.get(0, 0));  // 0->0 stays 0
  EXPECT_FALSE(r.get(1, 0));  // 0->1 slowed: holds 0 (FAULTY)
  EXPECT_FALSE(r.get(2, 0));  // 1->0 falls normally
  EXPECT_TRUE(r.get(3, 0));   // 1->1 stays 1

  const Fault stf = Fault::slow_to_fall(z);
  fm.set_faults({&stf, 1});
  const PatternSet r2 = fm.simulate_pair(launch, capture);
  EXPECT_FALSE(r2.get(0, 0));
  EXPECT_TRUE(r2.get(1, 0));  // rises normally
  EXPECT_TRUE(r2.get(2, 0));  // 1->0 slowed: holds 1 (FAULTY)
  EXPECT_TRUE(r2.get(3, 0));
}

/// Transition faults are inert in single-frame simulation, and static
/// faults corrupt both frames of a pair.
TEST(TransitionFault, InertWithoutPair) {
  const Netlist nl = make_c17();
  const PatternSet stimuli = PatternSet::exhaustive(5);
  const Fault str = Fault::slow_to_rise(nl.find_net("16"));
  FaultyMachine fm(nl);
  fm.set_faults({&str, 1});
  EXPECT_EQ(fm.simulate(stimuli), simulate(nl, stimuli));
}

TEST(TransitionFault, StaticFaultStillActsInPairMode) {
  const Netlist nl = make_c17();
  const PatternSet launch = PatternSet::random(32, 5, 1);
  const PatternSet capture = PatternSet::random(32, 5, 2);
  const Fault sa = Fault::stem_sa(nl.find_net("16"), true);
  FaultyMachine fm(nl);
  fm.set_faults({&sa, 1});
  const PatternSet pair_resp = fm.simulate_pair(launch, capture);
  // Capture response must equal the static faulty response to the capture
  // vectors (a hard stuck-at has no history dependence).
  EXPECT_EQ(pair_resp, simulate_with_faults(nl, {&sa, 1}, capture));
}

/// Two-frame good machine equals two independent good simulations.
TEST(TransitionFault, GoodPairEqualsCaptureSim) {
  const Netlist nl = make_named_circuit("g200");
  const PatternSet launch = PatternSet::random(64, nl.n_inputs(), 3);
  const PatternSet capture = PatternSet::random(64, nl.n_inputs(), 4);
  PairFaultSimulator fsim(nl, launch, capture);
  EXPECT_EQ(fsim.good_response(), simulate(nl, capture));
}

TEST(TdfTpg, GeneratesUsablePairs) {
  const Netlist nl = make_named_circuit("g200");
  TdfTpgOptions opt;
  opt.seed = 5;
  const TdfTpgResult r = generate_tdf_tests(nl, opt);
  EXPECT_GT(r.capture.n_patterns(), 0u);
  EXPECT_EQ(r.launch.n_patterns(), r.capture.n_patterns());
  EXPECT_GT(r.coverage(), 0.5);
  // Deterministic.
  const TdfTpgResult r2 = generate_tdf_tests(nl, opt);
  EXPECT_EQ(r.capture, r2.capture);
  EXPECT_EQ(r.launch, r2.launch);
}

struct TdfCase {
  Netlist netlist = make_named_circuit("g200");
  TdfTpgResult tests = generate_tdf_tests(netlist, {256, 8, 4096, 7});
  PairFaultSimulator fsim{netlist, tests.launch, tests.capture};
  CollapsedFaults collapsed{netlist};
};

TdfCase& tdf_case() {
  static TdfCase c;
  return c;
}

/// Property: a single injected transition fault is diagnosed exactly in
/// pair mode.
TEST(TdfDiagnosis, SingleTransitionFaultDiagnosed) {
  TdfCase& c = tdf_case();
  std::mt19937_64 rng(11);
  std::size_t tested = 0, hits = 0;
  while (tested < 12) {
    const NetId net = rng() % c.netlist.n_nets();
    const Fault f = (rng() & 1) ? Fault::slow_to_rise(net)
                                : Fault::slow_to_fall(net);
    if (!c.fsim.detects(f)) continue;
    ++tested;
    const Datalog log = datalog_from_defect_pair(
        c.netlist, {&f, 1}, c.tests.launch, c.tests.capture,
        c.fsim.good_response());
    DiagnosisContext ctx(c.netlist, c.tests.launch, c.tests.capture, log);
    EXPECT_TRUE(ctx.pair_mode());
    const DiagnosisReport r = diagnose_multiplet(ctx);
    const TruthEvaluation ev =
        evaluate_against_truth(r, {&f, 1}, c.collapsed);
    hits += ev.all_hit;
    EXPECT_TRUE(r.explains_all) << to_string(f, c.netlist);
  }
  // Most single transition faults must be named exactly (some are
  // indistinguishable from equivalent sites under the pair set).
  EXPECT_GE(hits * 10, tested * 7);
}

/// Mixed static + dynamic defect: the pair-mode multiplet method explains
/// the composite log.
TEST(TdfDiagnosis, MixedStaticDynamicDefect) {
  TdfCase& c = tdf_case();
  std::mt19937_64 rng(13);
  DefectSampleConfig dc;
  dc.multiplicity = 2;
  dc.transition_fraction = 0.5;
  std::size_t tested = 0, exact = 0;
  for (int iter = 0; iter < 20 && tested < 8; ++iter) {
    const auto defect = sample_tdf_defect(c.netlist, c.fsim, dc, rng);
    if (!defect) continue;
    const Datalog log = datalog_from_defect_pair(
        c.netlist, *defect, c.tests.launch, c.tests.capture,
        c.fsim.good_response());
    if (!log.has_failures()) continue;
    ++tested;
    DiagnosisContext ctx(c.netlist, c.tests.launch, c.tests.capture, log);
    const DiagnosisReport r = diagnose_multiplet(ctx);
    exact += r.explains_all;
  }
  ASSERT_GT(tested, 0u);
  EXPECT_GE(exact * 2, tested);  // at least half explained exactly
}

TEST(TdfCampaign, RunsAndAggregates) {
  TdfCase& c = tdf_case();
  CampaignConfig cfg;
  cfg.n_cases = 6;
  cfg.defect.multiplicity = 2;
  cfg.defect.transition_fraction = 1.0;
  cfg.seed = 17;
  const CampaignResult r =
      run_tdf_campaign(c.netlist, c.tests.launch, c.tests.capture, cfg);
  EXPECT_GT(r.n_cases, 0u);
  EXPECT_EQ(r.multiplet.n_cases, r.n_cases);
  EXPECT_GE(r.multiplet.avg_hit_rate(), 0.0);
}

/// Pair-mode candidate extraction proposes the injected transition fault.
TEST(TdfCandidates, InjectedTransitionInPool) {
  TdfCase& c = tdf_case();
  std::mt19937_64 rng(19);
  std::size_t tested = 0;
  while (tested < 10) {
    const NetId net = rng() % c.netlist.n_nets();
    const Fault f = (rng() & 1) ? Fault::slow_to_rise(net)
                                : Fault::slow_to_fall(net);
    if (!c.fsim.detects(f)) continue;
    ++tested;
    const Datalog log = datalog_from_defect_pair(
        c.netlist, {&f, 1}, c.tests.launch, c.tests.capture,
        c.fsim.good_response());
    const CandidatePool pool = extract_tdf_candidates(
        c.netlist, c.tests.launch, c.tests.capture, log);
    EXPECT_NE(std::find(pool.faults.begin(), pool.faults.end(), f),
              pool.faults.end())
        << to_string(f, c.netlist);
  }
}

}  // namespace
}  // namespace mdd
