// Unit tests: fault-dictionary baseline.
#include <gtest/gtest.h>

#include <random>

#include "diag/dictionary.hpp"
#include "diag/metrics.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

struct Case {
  Netlist netlist = make_named_circuit("g200");
  PatternSet patterns = PatternSet::random(256, netlist.n_inputs(), 17);
  PatternSet good = simulate(netlist, patterns);
  CollapsedFaults collapsed{netlist};
  FaultDictionary dict{netlist, patterns};
};

Case& shared_case() {
  static Case c;
  return c;
}

TEST(Dictionary, BuildAccountsEntries) {
  const Case& c = shared_case();
  const CollapsedFaults cf(c.netlist);
  EXPECT_GE(c.dict.n_entries(), cf.representatives().size());
  EXPECT_GT(c.dict.build_seconds(), 0.0);
  EXPECT_GT(c.dict.stored_bits(), 0u);
}

TEST(Dictionary, ExactLookupFindsSingleStuckAt) {
  Case& c = shared_case();
  FaultSimulator fsim(c.netlist, c.patterns);
  std::mt19937_64 rng(5);
  std::size_t tested = 0;
  while (tested < 15) {
    const Fault f = Fault::stem_sa(rng() % c.netlist.n_nets(), rng() & 1);
    if (!fsim.detects(f)) continue;
    ++tested;
    const Datalog log = datalog_from_defect(c.netlist, {&f, 1}, c.patterns,
                                            c.good);
    const DiagnosisReport r = c.dict.diagnose(log);
    EXPECT_TRUE(r.explains_all) << to_string(f, c.netlist);
    const TruthEvaluation ev =
        evaluate_against_truth(r, {&f, 1}, c.collapsed);
    EXPECT_TRUE(ev.all_hit) << to_string(f, c.netlist);
  }
}

TEST(Dictionary, CompositeSignatureUsuallyMissesExact) {
  // Interacting double defects produce composite signatures that are not
  // dictionary entries — the approach's structural weakness.
  Case& c = shared_case();
  FaultSimulator fsim(c.netlist, c.patterns);
  std::mt19937_64 rng(6);
  std::size_t tested = 0, exact = 0;
  while (tested < 12) {
    const std::vector<Fault> defect{
        Fault::stem_sa(rng() % c.netlist.n_nets(), rng() & 1),
        Fault::stem_sa(rng() % c.netlist.n_nets(), rng() & 1)};
    if (defect[0].net == defect[1].net) continue;
    if (!fsim.detects(defect[0]) || !fsim.detects(defect[1])) continue;
    ++tested;
    const Datalog log =
        datalog_from_defect(c.netlist, defect, c.patterns, c.good);
    const DiagnosisReport r = c.dict.diagnose(log);
    exact += r.explains_all;
    // The fallback ranking still returns suspects.
    EXPECT_FALSE(r.suspects.empty());
  }
  EXPECT_LT(exact, tested);  // strictly worse than the multiplet method here
}

TEST(Dictionary, ExactMatchesListsAllIndistinguishable) {
  Case& c = shared_case();
  // Pick an equivalence class with >1 member: its representative's
  // signature must map back to faults covering the class.
  for (const auto& cls : c.collapsed.classes()) {
    if (cls.size() < 2) continue;
    FaultSimulator fsim(c.netlist, c.patterns);
    const ErrorSignature sig = fsim.signature(cls.front());
    if (sig.empty()) continue;
    const std::vector<Fault> matches = c.dict.exact_matches(sig);
    // The representative itself must be found.
    EXPECT_NE(std::find(matches.begin(), matches.end(), cls.front()),
              matches.end());
    return;
  }
  GTEST_SKIP() << "no multi-member detectable class";
}

TEST(Dictionary, EmptyObservedNoExplain) {
  Case& c = shared_case();
  Datalog log;
  log.observed = ErrorSignature(c.patterns.n_patterns(),
                                c.netlist.n_outputs());
  log.n_patterns_applied = c.patterns.n_patterns();
  const DiagnosisReport r = c.dict.diagnose(log);
  EXPECT_FALSE(r.explains_all);
}

}  // namespace
}  // namespace mdd
