// Tests for the daemon's circuit session cache: hit/miss accounting, the
// precomputed per-session state (good response, propagator baseline,
// memos), LRU eviction against the byte budget, survival of evicted
// sessions held by in-flight requests, and concurrent access (this file
// builds into the tsan-labelled binary).
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fsim/fsim.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"
#include "server/session_cache.hpp"
#include "workload/textio.hpp"

namespace mdd::server {
namespace {

/// Writes the g200 circuit + a 64-pattern set under unique names in the
/// test temp dir and returns the two paths. `tag` keeps per-test files
/// (and, with distinct tags, distinct cache keys) apart.
struct CircuitFiles {
  std::string netlist_path;
  std::string patterns_path;
};

CircuitFiles write_circuit_files(const std::string& tag) {
  const Netlist netlist = make_named_circuit("g200");
  const PatternSet patterns = PatternSet::random(64, netlist.n_inputs(), 7);
  CircuitFiles f;
  f.netlist_path = ::testing::TempDir() + "cache_" + tag + ".bench";
  f.patterns_path = ::testing::TempDir() + "cache_" + tag + ".patterns";
  std::ofstream bench(f.netlist_path);
  bench << write_bench_string(netlist);
  bench.close();
  write_patterns_file(f.patterns_path, patterns);
  return f;
}

/// Asserts the byte-accounting invariant (satellite of the sharding PR):
/// the running `bytes_` total must equal the sum of resident sessions'
/// approx_bytes, and the LRU index bookkeeping must be self-consistent.
/// Called after every mutation-heavy sequence in this file so any drift
/// across load/evict/pin paths fails loudly at the point it appears.
void expect_sound_accounting(const SessionCache& cache) {
  const SessionCache::AccountingCheck check = cache.check_accounting();
  EXPECT_TRUE(check.ok) << check.detail;
  EXPECT_EQ(check.accounted, check.recomputed) << check.detail;
}

TEST(SessionCache, MissThenHitSharesOneSession) {
  const CircuitFiles f = write_circuit_files("hit");
  SessionCache cache(1ull << 30);

  bool hit = true;
  const auto first = cache.get(f.netlist_path, f.patterns_path, &hit);
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(hit);

  const auto second = cache.get(f.netlist_path, f.patterns_path, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(second.get(), first.get());

  const SessionCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, first->approx_bytes);
  EXPECT_GT(s.bytes, 0u);
  expect_sound_accounting(cache);
}

TEST(SessionCache, SessionPrecomputesSharedState) {
  const CircuitFiles f = write_circuit_files("state");
  SessionCache cache(1ull << 30);
  const auto session = cache.get(f.netlist_path, f.patterns_path);

  // The cached good response is exactly what a fresh simulation produces.
  const PatternSet expected_good =
      simulate(session->netlist, session->patterns);
  EXPECT_EQ(session->good, expected_good);

  // Propagator baseline: one [block][net] row per 64-pattern block, plus
  // the good PO response — full-window shape, ready for sharing.
  ASSERT_NE(session->baseline, nullptr);
  const std::size_t n_blocks = (session->patterns.n_patterns() + 63) / 64;
  ASSERT_EQ(session->baseline->values.size(), n_blocks);
  for (const auto& block : session->baseline->values)
    EXPECT_EQ(block.size(), session->netlist.n_nets());
  EXPECT_EQ(session->baseline->good.n_patterns(),
            session->patterns.n_patterns());

  // Cross-request memos exist (empty until requests populate them).
  ASSERT_NE(session->memo, nullptr);
  ASSERT_NE(session->traces, nullptr);
  EXPECT_EQ(session->memo->stats().entries, 0u);
  EXPECT_EQ(session->traces->stats().entries, 0u);

  EXPECT_EQ(approx_session_bytes(*session), session->approx_bytes);
}

TEST(SessionCache, EvictsLeastRecentlyUsed) {
  const CircuitFiles a = write_circuit_files("lru_a");
  const CircuitFiles b = write_circuit_files("lru_b");
  const CircuitFiles c = write_circuit_files("lru_c");

  // Scout load to learn one session's footprint, then size the budget to
  // hold exactly two of the three (all identical circuits).
  std::size_t one;
  {
    SessionCache scout(1ull << 30);
    one = scout.get(a.netlist_path, a.patterns_path)->approx_bytes;
    ASSERT_GT(one, 0u);
  }

  SessionCache cache(2 * one + one / 2);
  cache.get(a.netlist_path, a.patterns_path);
  cache.get(b.netlist_path, b.patterns_path);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch A so B becomes the least recently used, then load C: B must be
  // the one evicted.
  bool hit = false;
  cache.get(a.netlist_path, a.patterns_path, &hit);
  EXPECT_TRUE(hit);
  cache.get(c.netlist_path, c.patterns_path);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  cache.get(a.netlist_path, a.patterns_path, &hit);
  EXPECT_TRUE(hit) << "recently-used A should have survived";
  cache.get(b.netlist_path, b.patterns_path, &hit);
  EXPECT_FALSE(hit) << "LRU B should have been evicted";
  expect_sound_accounting(cache);
}

TEST(SessionCache, EvictedSessionSurvivesForHolders) {
  const CircuitFiles a = write_circuit_files("hold_a");
  const CircuitFiles b = write_circuit_files("hold_b");

  std::size_t one;
  {
    SessionCache scout(1ull << 30);
    one = scout.get(a.netlist_path, a.patterns_path)->approx_bytes;
  }

  // Budget below two sessions: loading B evicts A while we still hold A's
  // shared_ptr — the in-flight-request scenario.
  SessionCache cache(one + one / 2);
  const auto held = cache.get(a.netlist_path, a.patterns_path);
  cache.get(b.netlist_path, b.patterns_path);
  EXPECT_GE(cache.stats().evictions, 1u);

  // The evicted session remains fully usable.
  EXPECT_EQ(held->good, simulate(held->netlist, held->patterns));
  expect_sound_accounting(cache);
}

TEST(SessionCache, PinnedSessionSurvivesEvictionPressure) {
  const CircuitFiles a = write_circuit_files("pin_a");
  const CircuitFiles b = write_circuit_files("pin_b");
  const CircuitFiles c = write_circuit_files("pin_c");

  std::size_t one;
  {
    SessionCache scout(1ull << 30);
    one = scout.get(a.netlist_path, a.patterns_path)->approx_bytes;
  }

  // Budget holds two sessions. Pin A (the batch-in-flight scenario), then
  // make A the LRU victim by touching B and loading C: the sweep must skip
  // pinned A and evict B instead.
  SessionCache cache(2 * one + one / 2);
  const SessionCache::Pin pin = cache.pin(a.netlist_path, a.patterns_path);
  cache.get(a.netlist_path, a.patterns_path);
  cache.get(b.netlist_path, b.patterns_path);
  cache.get(c.netlist_path, c.patterns_path);
  EXPECT_EQ(cache.stats().evictions, 1u);

  bool hit = false;
  cache.get(a.netlist_path, a.patterns_path, &hit);
  EXPECT_TRUE(hit) << "pinned LRU session must not be evicted";
  cache.get(b.netlist_path, b.patterns_path, &hit);
  EXPECT_FALSE(hit) << "unpinned B should have been the victim";
  expect_sound_accounting(cache);
}

TEST(SessionCache, ReleasedPinMakesSessionEvictableAgain) {
  const CircuitFiles a = write_circuit_files("unpin_a");
  const CircuitFiles b = write_circuit_files("unpin_b");
  const CircuitFiles c = write_circuit_files("unpin_c");

  std::size_t one;
  {
    SessionCache scout(1ull << 30);
    one = scout.get(a.netlist_path, a.patterns_path)->approx_bytes;
  }

  SessionCache cache(2 * one + one / 2);
  {
    const SessionCache::Pin pin =
        cache.pin(a.netlist_path, a.patterns_path);
    cache.get(a.netlist_path, a.patterns_path);
    cache.get(b.netlist_path, b.patterns_path);
  }  // pin released: A is ordinary LRU state again
  cache.get(b.netlist_path, b.patterns_path);  // A becomes LRU
  cache.get(c.netlist_path, c.patterns_path);

  bool hit = true;
  cache.get(a.netlist_path, a.patterns_path, &hit);
  EXPECT_FALSE(hit) << "released pin must not keep protecting A";
  expect_sound_accounting(cache);
}

TEST(SessionCache, NestedPinsReleaseIndependently) {
  const CircuitFiles a = write_circuit_files("nest_a");
  const CircuitFiles b = write_circuit_files("nest_b");
  const CircuitFiles c = write_circuit_files("nest_c");

  std::size_t one;
  {
    SessionCache scout(1ull << 30);
    one = scout.get(a.netlist_path, a.patterns_path)->approx_bytes;
  }

  // Two concurrent batches pin the same session; releasing one must keep
  // the other's protection intact.
  SessionCache cache(2 * one + one / 2);
  const SessionCache::Pin outer =
      cache.pin(a.netlist_path, a.patterns_path);
  {
    const SessionCache::Pin inner =
        cache.pin(a.netlist_path, a.patterns_path);
  }
  cache.get(a.netlist_path, a.patterns_path);
  cache.get(b.netlist_path, b.patterns_path);
  cache.get(c.netlist_path, c.patterns_path);

  bool hit = false;
  cache.get(a.netlist_path, a.patterns_path, &hit);
  EXPECT_TRUE(hit) << "one released pin of two must not unpin the session";
  expect_sound_accounting(cache);
}

TEST(SessionCache, LoadFailureIsNotCached) {
  const CircuitFiles f = write_circuit_files("fail");
  const std::string missing = ::testing::TempDir() + "cache_nosuch.bench";
  SessionCache cache(1ull << 30);

  EXPECT_THROW(cache.get(missing, f.patterns_path), std::runtime_error);
  EXPECT_THROW(cache.get(missing, f.patterns_path), std::runtime_error);
  EXPECT_EQ(cache.stats().entries, 0u);

  // A malformed pattern file fails too, and the failure is not sticky for
  // the valid pair.
  const std::string bad = ::testing::TempDir() + "cache_bad.patterns";
  std::ofstream(bad) << "patterns 0\n";
  EXPECT_THROW(cache.get(f.netlist_path, bad), std::runtime_error);

  bool hit = true;
  const auto session = cache.get(f.netlist_path, f.patterns_path, &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
  expect_sound_accounting(cache);
}

TEST(SessionCacheStress, ConcurrentGetsShareOneLoad) {
  const CircuitFiles f = write_circuit_files("conc");
  SessionCache cache(1ull << 30);

  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const Session>> got(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&, t] { got[t] = cache.get(f.netlist_path, f.patterns_path); });
  for (std::thread& t : threads) t.join();

  // Everyone observes the same session object — one load, shared.
  for (std::size_t t = 1; t < kThreads; ++t)
    EXPECT_EQ(got[t].get(), got[0].get());
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SessionCacheStress, ConcurrentDistinctCircuitsLoadIndependently) {
  const CircuitFiles a = write_circuit_files("par_a");
  const CircuitFiles b = write_circuit_files("par_b");
  SessionCache cache(1ull << 30);

  std::vector<std::shared_ptr<const Session>> got(8);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < got.size(); ++t)
    threads.emplace_back([&, t] {
      const CircuitFiles& f = (t % 2 == 0) ? a : b;
      got[t] = cache.get(f.netlist_path, f.patterns_path);
    });
  for (std::thread& t : threads) t.join();

  for (std::size_t t = 2; t < got.size(); ++t)
    EXPECT_EQ(got[t].get(), got[t % 2].get());
  EXPECT_NE(got[0].get(), got[1].get());
  EXPECT_EQ(cache.stats().entries, 2u);
  expect_sound_accounting(cache);
}

TEST(SessionCacheStress, ChurnKeepsByteAccountingExact) {
  // Satellite of the sharding PR: hammer the load/evict/pin/release paths
  // from several threads under a budget that forces constant eviction,
  // then assert the running byte total still matches a recomputation.
  // Any leak (evicted bytes not subtracted, double-subtraction on a
  // pin/evict race) shows up as accounted != recomputed.
  const CircuitFiles files[3] = {write_circuit_files("churn_a"),
                                 write_circuit_files("churn_b"),
                                 write_circuit_files("churn_c")};

  std::size_t one;
  {
    SessionCache scout(1ull << 30);
    one = scout.get(files[0].netlist_path, files[0].patterns_path)
              ->approx_bytes;
  }

  // Room for two of the three sessions: every third distinct get evicts.
  SessionCache cache(2 * one + one / 2);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kIters = 6;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        const CircuitFiles& f = files[(t + i) % 3];
        const SessionCache::Pin pin =
            cache.pin(f.netlist_path, f.patterns_path);
        const auto session = cache.get(f.netlist_path, f.patterns_path);
        EXPECT_NE(session, nullptr);
        // Also churn a neighbour without pinning it, so pinned and
        // unpinned entries compete for the same budget.
        cache.get(files[(t + i + 1) % 3].netlist_path,
                  files[(t + i + 1) % 3].patterns_path);
      }
    });
  for (std::thread& t : threads) t.join();

  const SessionCacheStats s = cache.stats();
  EXPECT_GT(s.evictions, 0u) << "budget was meant to force eviction churn";
  EXPECT_LE(s.entries, 3u);
  expect_sound_accounting(cache);
}

}  // namespace
}  // namespace mdd::server
