// Unit tests: text file formats and fault-spec parsing.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <typeinfo>

#include "netlist/generator.hpp"
#include "workload/textio.hpp"

namespace mdd {
namespace {

TEST(TextIoPatterns, RoundTrip) {
  const PatternSet original = PatternSet::random(100, 7, 3);
  std::stringstream ss;
  write_patterns(ss, original);
  const PatternSet back = read_patterns(ss);
  EXPECT_EQ(back, original);
}

TEST(TextIoPatterns, RejectsBadInput) {
  {
    std::stringstream ss("nonsense 3\n010\n");
    EXPECT_THROW(read_patterns(ss), std::runtime_error);
  }
  {
    std::stringstream ss("patterns 3\n01\n");  // width mismatch
    EXPECT_THROW(read_patterns(ss), std::runtime_error);
  }
  {
    std::stringstream ss("patterns 3\n01X\n");  // non-binary
    EXPECT_THROW(read_patterns(ss), std::runtime_error);
  }
  {
    std::stringstream ss("patterns 3\n");  // empty
    EXPECT_THROW(read_patterns(ss), std::runtime_error);
  }
}

TEST(TextIoPatterns, CommentsIgnored) {
  std::stringstream ss("# hello\npatterns 2\n01 # trailing\n10\n");
  const PatternSet ps = read_patterns(ss);
  EXPECT_EQ(ps.n_patterns(), 2u);
  EXPECT_TRUE(ps.get(0, 1));
  EXPECT_TRUE(ps.get(1, 0));
}

TEST(TextIoDatalog, RoundTrip) {
  const Netlist nl = make_c17();
  const PatternSet patterns = PatternSet::exhaustive(5);
  const PatternSet good = simulate(nl, patterns);
  const Fault f = Fault::stem_sa(nl.find_net("16"), true);
  const Datalog original =
      datalog_from_defect(nl, {&f, 1}, patterns, good);
  ASSERT_TRUE(original.has_failures());

  std::stringstream ss;
  write_datalog(ss, original, nl);
  const Datalog back = read_datalog(ss, nl);
  EXPECT_EQ(back.observed, original.observed);
  EXPECT_EQ(back.n_patterns_applied, original.n_patterns_applied);
}

TEST(TextIoDatalog, RejectsBadInput) {
  const Netlist nl = make_c17();
  {
    std::stringstream ss("datalog\nfail 1 : 22\n");  // missing applied
    EXPECT_THROW(read_datalog(ss, nl), std::runtime_error);
  }
  {
    std::stringstream ss("datalog\napplied 8\nfail 1 : nosuch\n");
    EXPECT_THROW(read_datalog(ss, nl), std::runtime_error);
  }
  {
    std::stringstream ss("datalog\napplied 8\nfail 1 : 16\n");  // not a PO
    EXPECT_THROW(read_datalog(ss, nl), std::runtime_error);
  }
  {
    std::stringstream ss("datalog\napplied 2\nfail 5 : 22\n");  // beyond
    EXPECT_THROW(read_datalog(ss, nl), std::runtime_error);
  }
}

TEST(TextIoDatalog, RejectsHostileInput) {
  const Netlist nl = make_c17();
  {  // Negative count: must not wrap through unsigned extraction.
    std::stringstream ss("datalog\napplied -5\nfail 1 : 22\n");
    EXPECT_THROW(read_datalog(ss, nl), std::runtime_error);
  }
  {  // Trailing junk on the applied line.
    std::stringstream ss("datalog\napplied 8 junk\nfail 1 : 22\n");
    EXPECT_THROW(read_datalog(ss, nl), std::runtime_error);
  }
  {  // Duplicate fail lines for one pattern.
    std::stringstream ss(
        "datalog\napplied 8\nfail 1 : 22\nfail 1 : 23\n");
    EXPECT_THROW(read_datalog(ss, nl), std::runtime_error);
  }
  {  // Fail line listing no outputs.
    std::stringstream ss("datalog\napplied 8\nfail 1 :\n");
    EXPECT_THROW(read_datalog(ss, nl), std::runtime_error);
  }
  {  // Unknown line keyword.
    std::stringstream ss("datalog\napplied 8\nfial 1 : 22\n");
    EXPECT_THROW(read_datalog(ss, nl), std::runtime_error);
  }
  {  // Out-of-order fail lines are fine (testers don't guarantee order).
    std::stringstream ss("datalog\napplied 8\nfail 5 : 22\nfail 1 : 23\n");
    const Datalog log = read_datalog(ss, nl);
    EXPECT_EQ(log.observed.n_failing_patterns(), 2u);
    EXPECT_EQ(log.observed.failing_patterns().front(), 1u);
  }
}

TEST(TextIoPatterns, RejectsHeaderJunk) {
  {
    std::stringstream ss("patterns 3 extra\n010\n");
    EXPECT_THROW(read_patterns(ss), std::runtime_error);
  }
  {
    std::stringstream ss("patterns 0\n");
    EXPECT_THROW(read_patterns(ss), std::runtime_error);
  }
  {
    std::stringstream ss("patterns -3\n010\n");
    EXPECT_THROW(read_patterns(ss), std::runtime_error);
  }
}

TEST(FaultSpec, ParsesAllKinds) {
  const Netlist nl = make_c17();
  EXPECT_EQ(parse_fault_spec("sa0 16", nl),
            Fault::stem_sa(nl.find_net("16"), false));
  EXPECT_EQ(parse_fault_spec("SA1 16", nl),
            Fault::stem_sa(nl.find_net("16"), true));
  EXPECT_EQ(parse_fault_spec("sa1 16.1", nl),
            Fault::branch_sa(nl.find_net("16"), 1, true));
  EXPECT_EQ(parse_fault_spec("dom 10 19", nl),
            Fault::bridge_dom(nl.find_net("19"), nl.find_net("10")));
  EXPECT_EQ(parse_fault_spec("wand 10 19", nl),
            Fault::bridge_wand(nl.find_net("10"), nl.find_net("19")));
  EXPECT_EQ(parse_fault_spec("wor 10 19", nl),
            Fault::bridge_wor(nl.find_net("10"), nl.find_net("19")));
  EXPECT_EQ(parse_fault_spec("str 16", nl),
            Fault::slow_to_rise(nl.find_net("16")));
  EXPECT_EQ(parse_fault_spec("stf 16", nl),
            Fault::slow_to_fall(nl.find_net("16")));
}

TEST(FaultSpec, RejectsBadSpecs) {
  const Netlist nl = make_c17();
  EXPECT_THROW(parse_fault_spec("sa0 nosuch", nl), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("frob 16", nl), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("sa0", nl), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("dom 10", nl), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("sa0 16.9", nl), std::invalid_argument);
  // Trailing junk after a valid spec is rejected, not silently dropped.
  EXPECT_THROW(parse_fault_spec("sa0 16 extra", nl), std::runtime_error);
  EXPECT_THROW(parse_fault_spec("dom 10 19 22", nl), std::runtime_error);
}

TEST(FaultSpec, RejectsHostileBranchPins) {
  const Netlist nl = make_c17();
  // A pin number past unsigned-long range used to escape as a raw
  // std::out_of_range from std::stoul. It must surface as the parser's
  // own error (std::runtime_error with the "textio:" prefix) — note
  // out_of_range derives from logic_error, so a raw escape would NOT
  // satisfy the EXPECT below.
  const auto expect_parse_error = [&](const std::string& spec) {
    try {
      (void)parse_fault_spec(spec, nl);
      ADD_FAILURE() << "'" << spec << "' parsed";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()).rfind("textio:", 0), 0u)
          << "'" << spec << "' threw '" << e.what() << "'";
    } catch (const std::exception& e) {
      ADD_FAILURE() << "'" << spec << "' escaped as " << typeid(e).name()
                    << ": " << e.what();
    }
  };
  expect_parse_error("sa0 16.99999999999999999999");  // > unsigned long
  expect_parse_error("sa0 16.4294967296");  // fits unsigned long, > uint32
  expect_parse_error("sa0 16.18446744073709551617");  // > uint64 wrap bait
}

}  // namespace
}  // namespace mdd
