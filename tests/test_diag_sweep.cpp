// Parameterized diagnosis property sweeps across the benchmark registry.
//
// The properties every circuit must satisfy, regardless of structure:
//  * a detectable single stuck-at defect is explained exactly by the
//    multiplet method, and the suspect (or an alternate) names the site
//    whenever the pattern set can distinguish it at all;
//  * reported "exact" multiplets really reproduce the datalog when
//    re-simulated independently;
//  * diagnosis is deterministic.
#include <gtest/gtest.h>

#include <random>

#include "diag/metrics.hpp"
#include "diag/multiplet.hpp"
#include "diag/single_fault.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

struct SweepCase {
  const char* circuit;
  std::size_t n_patterns;
};

class DiagnosisSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DiagnosisSweep, SingleStuckAtDiagnosedExactly) {
  const auto& param = GetParam();
  const Netlist nl = make_named_circuit(param.circuit);
  const PatternSet patterns =
      PatternSet::random(param.n_patterns, nl.n_inputs(), 0xD1A6);
  const PatternSet good = simulate(nl, patterns);
  const CollapsedFaults collapsed(nl);
  FaultSimulator fsim(nl, patterns);

  std::mt19937_64 rng(99);
  std::size_t tested = 0, named = 0;
  while (tested < 10) {
    const Fault f = Fault::stem_sa(rng() % nl.n_nets(), rng() & 1);
    if (!fsim.detects(f)) continue;
    ++tested;
    const Datalog log = datalog_from_defect(nl, {&f, 1}, patterns, good);
    DiagnosisContext ctx(nl, patterns, log);
    const DiagnosisReport r = diagnose_multiplet(ctx);
    ASSERT_TRUE(r.explains_all)
        << param.circuit << ": " << to_string(f, nl);
    // Independent verification of the exactness claim.
    const PatternSet resp =
        simulate_with_faults(nl, r.suspect_faults(), patterns);
    ASSERT_EQ(ErrorSignature::diff(good, resp), log.observed)
        << param.circuit;
    named += evaluate_against_truth(r, {&f, 1}, collapsed).all_hit;
  }
  // Site naming can be ambiguous on some circuits (response-identical
  // sites), but must hold for the large majority.
  EXPECT_GE(named * 10, tested * 6) << param.circuit;
}

TEST_P(DiagnosisSweep, Deterministic) {
  const auto& param = GetParam();
  const Netlist nl = make_named_circuit(param.circuit);
  const PatternSet patterns =
      PatternSet::random(param.n_patterns, nl.n_inputs(), 0xD1A7);
  const PatternSet good = simulate(nl, patterns);
  FaultSimulator fsim(nl, patterns);
  std::mt19937_64 rng(5);
  Fault f{};
  do {
    f = Fault::stem_sa(rng() % nl.n_nets(), rng() & 1);
  } while (!fsim.detects(f));
  const Datalog log = datalog_from_defect(nl, {&f, 1}, patterns, good);
  DiagnosisContext ctx1(nl, patterns, log);
  DiagnosisContext ctx2(nl, patterns, log);
  EXPECT_EQ(diagnose_multiplet(ctx1).suspect_faults(),
            diagnose_multiplet(ctx2).suspect_faults());
  EXPECT_EQ(diagnose_single_fault(ctx1).suspect_faults(),
            diagnose_single_fault(ctx2).suspect_faults());
}

INSTANTIATE_TEST_SUITE_P(
    Registry, DiagnosisSweep,
    ::testing::Values(SweepCase{"add8", 128}, SweepCase{"add32", 192},
                      SweepCase{"par64", 128}, SweepCase{"mux16", 192},
                      SweepCase{"g200", 256}),
    [](const auto& info) { return std::string(info.param.circuit); });

}  // namespace
}  // namespace mdd
