// Integration tests: the full pipeline (circuit -> ATPG -> injection ->
// datalog -> diagnosis -> metrics) across the benchmark registry, plus the
// headline shape property the reproduced paper is about.
#include <gtest/gtest.h>

#include "workload/campaign.hpp"
#include "workload/circuits.hpp"

namespace mdd {
namespace {

class PipelineOnCircuit : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineOnCircuit, AtpgProducesUsableTestSet) {
  const BenchCircuit bc = load_bench_circuit(GetParam());
  EXPECT_GT(bc.patterns.n_patterns(), 0u);
  EXPECT_GT(bc.tpg.coverage(), 0.85) << GetParam();
}

TEST_P(PipelineOnCircuit, DoubleDefectCampaignRuns) {
  const BenchCircuit bc = load_bench_circuit(GetParam());
  CampaignConfig cfg;
  cfg.n_cases = 6;
  cfg.defect.multiplicity = 2;
  cfg.seed = 31;
  const CampaignResult r = run_campaign(bc.netlist, bc.patterns, cfg);
  ASSERT_GT(r.n_cases, 0u) << GetParam();
  // On tiny circuits many distinct multiplets are response-identical, so
  // naming the exact injected sites is not always possible; what the
  // method must deliver everywhere is an *explanation*: a multiplet that
  // reproduces the datalog. (Site-naming accuracy across methods is the
  // subject of the bench harness, on circuits large enough for ambiguity
  // to be the exception.)
  EXPECT_GE(r.multiplet.exact_rate(), 0.3) << GetParam();
  // Reported multiplets stay near the injected size (no suspect flooding:
  // the single-fault baseline reports top-10, the multiplet members only).
  EXPECT_LE(r.multiplet.avg_resolution(), 1.6) << GetParam();
  // Hit rate is bounded below by exactness minus ambiguity, loosely.
  EXPECT_GE(r.multiplet.avg_hit_rate(), 0.0) << GetParam();
}

TEST(Pipeline, DoubleDefectAccuracyOnG200) {
  const BenchCircuit bc = load_bench_circuit("g200");
  CampaignConfig cfg;
  cfg.n_cases = 12;
  cfg.defect.multiplicity = 2;
  cfg.seed = 31;
  const CampaignResult r = run_campaign(bc.netlist, bc.patterns, cfg);
  ASSERT_GT(r.n_cases, 6u);
  EXPECT_GE(r.multiplet.avg_hit_rate(), 0.6);
  EXPECT_GE(r.multiplet.exact_rate(), 0.6);
  // Multiple defects break the single-fault baseline's exactness.
  EXPECT_GE(r.multiplet.avg_hit_rate() + 1e-9, r.single.avg_hit_rate());
}

INSTANTIATE_TEST_SUITE_P(Registry, PipelineOnCircuit,
                         ::testing::Values("c17", "add8", "par64", "mux16",
                                           "g200"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

/// Headline shape claim: under forced interaction, the no-assumptions
/// multiplet diagnoser explains more datalogs exactly and names at least
/// as many injected defects as the SLAT baseline.
TEST(Headline, MultipletBeatsSlatUnderInteraction) {
  const BenchCircuit bc = load_bench_circuit("g200");
  CampaignConfig cfg;
  cfg.n_cases = 20;
  cfg.defect.multiplicity = 3;
  cfg.defect.interaction = InteractionLevel::SameCone;
  cfg.defect.bridge_fraction = 0.0;
  cfg.seed = 77;
  const CampaignResult r = run_campaign(bc.netlist, bc.patterns, cfg);
  ASSERT_GE(r.n_cases, 10u);
  EXPECT_GE(r.multiplet.avg_hit_rate() + 1e-9, r.slat.avg_hit_rate());
  EXPECT_GE(r.multiplet.exact_rate(), r.slat.exact_rate());
  // Interaction shows up as non-SLAT patterns.
  EXPECT_LT(r.avg_slat_fraction, 1.0);
}

/// Truncated datalogs still diagnose (with reduced quality at the margin).
TEST(Headline, TruncationDegradesGracefully) {
  const BenchCircuit bc = load_bench_circuit("g200");
  CampaignConfig full;
  full.n_cases = 10;
  full.defect.multiplicity = 2;
  full.seed = 13;
  CampaignConfig truncated = full;
  truncated.datalog.max_failing_patterns = 4;
  const CampaignResult a = run_campaign(bc.netlist, bc.patterns, full);
  const CampaignResult b = run_campaign(bc.netlist, bc.patterns, truncated);
  ASSERT_GT(a.n_cases, 0u);
  ASSERT_GT(b.n_cases, 0u);
  // Full logs can only help.
  EXPECT_GE(a.multiplet.avg_hit_rate() + 0.15, b.multiplet.avg_hit_rate());
}

}  // namespace
}  // namespace mdd
