// Unit tests: X-masked observations.
#include <gtest/gtest.h>

#include "diag/metrics.hpp"
#include "diag/multiplet.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

ErrorSignature sig_with(std::initializer_list<std::pair<std::uint32_t, Word>>
                            entries,
                        std::size_t n_patterns = 100,
                        std::size_t n_outputs = 8) {
  ErrorSignature sig(n_patterns, n_outputs);
  for (const auto& [p, mask] : entries) sig.append(p, {&mask, 1});
  return sig;
}

TEST(XMask, MaskedFailuresDisappear) {
  const ErrorSignature full = sig_with({{2, 0b11}, {9, 0b1}});
  DatalogOptions opt;
  opt.x_mask_fraction = 1.0;  // everything masked
  const Datalog log = make_datalog(full, 100, opt);
  EXPECT_FALSE(log.has_failures());
  EXPECT_FALSE(log.masked.empty());
}

TEST(XMask, ZeroFractionNoMask) {
  const ErrorSignature full = sig_with({{2, 0b11}});
  const Datalog log = make_datalog(full, 100);
  EXPECT_TRUE(log.masked.empty());
  EXPECT_EQ(log.observed, full);
}

TEST(XMask, MaskIsDeterministicInSeed) {
  const ErrorSignature full = sig_with({{2, 0b11}});
  DatalogOptions opt;
  opt.x_mask_fraction = 0.3;
  opt.x_mask_seed = 42;
  const Datalog a = make_datalog(full, 100, opt);
  const Datalog b = make_datalog(full, 100, opt);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.observed, b.observed);
  opt.x_mask_seed = 43;
  const Datalog c = make_datalog(full, 100, opt);
  EXPECT_NE(c.masked, a.masked);
}

TEST(XMask, ObservedNeverIntersectsMask) {
  const Netlist nl = make_named_circuit("g200");
  const PatternSet patterns = PatternSet::random(128, nl.n_inputs(), 3);
  const PatternSet good = simulate(nl, patterns);
  const Fault f = Fault::stem_sa(nl.find_net("g_50"), true);
  DatalogOptions opt;
  opt.x_mask_fraction = 0.2;
  const Datalog log = datalog_from_defect(nl, {&f, 1}, patterns, good, opt);
  const ErrorSignature overlap =
      signature_difference(log.observed,
                           signature_difference(log.observed, log.masked));
  EXPECT_TRUE(overlap.empty());
}

/// Diagnosis remains exact when the defect is still observable: masked
/// bits are stripped from both the datalog and the candidate signatures,
/// so a masked bit can never produce a mismatch.
TEST(XMask, DiagnosisConsistentUnderMasking) {
  const Netlist nl = make_named_circuit("g200");
  const PatternSet patterns = PatternSet::random(256, nl.n_inputs(), 7);
  const PatternSet good = simulate(nl, patterns);
  const CollapsedFaults collapsed(nl);
  const Fault f = Fault::stem_sa(nl.find_net("g_120"), false);

  DatalogOptions opt;
  opt.x_mask_fraction = 0.1;
  const Datalog log = datalog_from_defect(nl, {&f, 1}, patterns, good, opt);
  if (!log.has_failures()) GTEST_SKIP() << "defect fully masked";
  DiagnosisContext ctx(nl, patterns, log);
  const DiagnosisReport r = diagnose_multiplet(ctx);
  EXPECT_TRUE(r.explains_all);
  const TruthEvaluation ev = evaluate_against_truth(r, {&f, 1}, collapsed);
  EXPECT_TRUE(ev.all_hit);
}

}  // namespace
}  // namespace mdd
