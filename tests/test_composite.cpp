// Unit tests: event-driven composite (multi-fault) propagation.
//
// The defining property, mirroring the single-fault PPSFP tests: for
// every fault-model mix the propagator's composite signature is
// bit-identical to the reference simulators (FaultSimulator /
// PairFaultSimulator), which inject the whole multiplet into the exact
// fixpoint machine. Multiplets whose bridges could couple cyclically must
// take the exact-machine fallback and still match.
//
// Where a multiplet might not converge (cyclic couplings), the reference
// result can depend on the machine's value history, so those comparisons
// use a fresh engine on each side; convergent mixes additionally pin down
// that a *reused* engine stays byte-identical query after query.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "diag/multiplet.hpp"
#include "fsim/propagate.hpp"
#include "netlist/generator.hpp"
#include "obs/metrics.hpp"

namespace mdd {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 42, 0xBEEF};

std::vector<Fault> draw_multiplet(const std::vector<Fault>& universe,
                                  std::mt19937_64& rng, std::size_t size) {
  std::vector<Fault> m;
  m.reserve(size);
  for (std::size_t k = 0; k < size; ++k)
    m.push_back(universe[rng() % universe.size()]);
  return m;
}

TEST(CompositeProp, MatchesReferenceForStuckAtMultiplets) {
  const Netlist nl = make_named_circuit("g200");
  const PatternSet patterns = PatternSet::random(200, nl.n_inputs(), 21);
  FaultSimulator reference(nl, patterns);
  SingleFaultPropagator prop(nl, patterns);
  const std::vector<Fault> universe = all_stuck_at_faults(nl);
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(seed);
    std::mt19937_64 rng(seed);
    // No bridges -> always convergent: reusing both engines across
    // multiplets is exact, which also exercises overlay reset.
    for (int iter = 0; iter < 25; ++iter) {
      const auto m = draw_multiplet(universe, rng, 1 + rng() % 6);
      ASSERT_EQ(prop.signature(std::span<const Fault>(m)),
                reference.signature(std::span<const Fault>(m)))
          << "iter " << iter;
    }
  }
}

TEST(CompositeProp, MatchesReferenceForMixedStaticMultiplets) {
  const Netlist nl = make_named_circuit("g200");
  const PatternSet patterns = PatternSet::random(200, nl.n_inputs(), 22);
  const PatternSet good = simulate(nl, patterns);
  const auto baseline = SingleFaultPropagator::make_baseline(nl, patterns);

  std::vector<Fault> universe = all_stuck_at_faults(nl);
  BridgeUniverseConfig cfg;
  cfg.count = 40;
  cfg.seed = 5;
  for (const Fault& f : sample_bridge_faults(nl, cfg)) universe.push_back(f);

  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(seed);
    std::mt19937_64 rng(seed);
    for (int iter = 0; iter < 20; ++iter) {
      const auto m = draw_multiplet(universe, rng, 2 + rng() % 4);
      // Multi-bridge multiplets can couple cyclically, where results are
      // history-dependent: compare fresh engine against fresh reference.
      FaultSimulator reference(nl, patterns, good);
      SingleFaultPropagator prop(nl, patterns, baseline);
      ASSERT_EQ(prop.signature(std::span<const Fault>(m)),
                reference.signature(std::span<const Fault>(m)))
          << "iter " << iter;
    }
  }
}

TEST(CompositeProp, MatchesPairReferenceForMixedMultiplets) {
  const Netlist nl = make_named_circuit("g200");
  const PatternSet launch = PatternSet::random(150, nl.n_inputs(), 23);
  const PatternSet capture = PatternSet::random(150, nl.n_inputs(), 24);

  std::vector<Fault> universe = all_stuck_at_faults(nl);
  for (const Fault& f : all_transition_faults(nl)) universe.push_back(f);
  BridgeUniverseConfig cfg;
  cfg.count = 24;
  cfg.seed = 6;
  for (const Fault& f : sample_bridge_faults(nl, cfg)) universe.push_back(f);

  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(seed);
    std::mt19937_64 rng(seed);
    for (int iter = 0; iter < 8; ++iter) {
      const auto m = draw_multiplet(universe, rng, 2 + rng() % 4);
      PairFaultSimulator reference(nl, launch, capture);
      SingleFaultPropagator prop(nl, launch, capture);
      ASSERT_EQ(prop.signature(std::span<const Fault>(m)),
                reference.signature(std::span<const Fault>(m)))
          << "iter " << iter;
    }
  }
}

TEST(CompositeProp, CyclicBridgeCouplingFallsBackExactly) {
  const Netlist nl = make_c17();
  const PatternSet patterns = PatternSet::exhaustive(5);
  // 11 feeds 16, and the bridge forces 11 to copy 16: the victim's value
  // loops back into its own aggressor — a genuine influence cycle. An
  // unrelated stuck-at rides along so the cycle check runs inside a real
  // multiplet.
  const std::vector<Fault> m = {
      Fault::bridge_dom(nl.find_net("11"), nl.find_net("16")),
      Fault::stem_sa(nl.find_net("10"), false),
  };
  obs::Counter& fallbacks =
      obs::registry().counter("propagate.composite_fallbacks");
  const std::uint64_t before = fallbacks.value();
  FaultSimulator reference(nl, patterns);
  SingleFaultPropagator prop(nl, patterns);
  EXPECT_EQ(prop.signature(std::span<const Fault>(m)),
            reference.signature(std::span<const Fault>(m)));
  EXPECT_GT(fallbacks.value(), before)
      << "a feedback bridge inside a multiplet must take the exact path";
}

TEST(CompositeProp, UpstreamAggressorDominanceNeedsNoFallback) {
  const Netlist nl = make_c17();
  const PatternSet patterns = PatternSet::exhaustive(5);
  // The benign orientation of the pair above: the aggressor only feeds
  // the victim's *input* cone, so no value ever loops — the event engine
  // handles it directly (the symmetric single-fault feedback test is
  // conservative here).
  const std::vector<Fault> m = {
      Fault::bridge_dom(nl.find_net("16"), nl.find_net("11")),
      Fault::stem_sa(nl.find_net("10"), false),
  };
  obs::Counter& fallbacks =
      obs::registry().counter("propagate.composite_fallbacks");
  const std::uint64_t before = fallbacks.value();
  FaultSimulator reference(nl, patterns);
  SingleFaultPropagator prop(nl, patterns);
  EXPECT_EQ(prop.signature(std::span<const Fault>(m)),
            reference.signature(std::span<const Fault>(m)));
  EXPECT_EQ(fallbacks.value(), before);
}

TEST(CompositeProp, EmptyMultipletIsEmptySignature) {
  const Netlist nl = make_c17();
  const PatternSet patterns = PatternSet::exhaustive(5);
  SingleFaultPropagator prop(nl, patterns);
  const ErrorSignature sig = prop.signature(std::span<const Fault>{});
  EXPECT_TRUE(sig.empty());
  EXPECT_EQ(sig.n_patterns(), patterns.n_patterns());
  EXPECT_EQ(sig.n_outputs(), nl.n_outputs());
}

TEST(CompositeProp, SingletonCompositeEqualsSoloSignature) {
  const Netlist nl = make_named_circuit("g200");
  const PatternSet patterns = PatternSet::random(128, nl.n_inputs(), 25);
  SingleFaultPropagator prop(nl, patterns);
  std::mt19937_64 rng(7);
  const std::vector<Fault> universe = all_stuck_at_faults(nl);
  for (int iter = 0; iter < 20; ++iter) {
    const Fault f = universe[rng() % universe.size()];
    ASSERT_EQ(prop.signature(std::span<const Fault>(&f, 1)),
              prop.signature(f))
        << to_string(f, nl);
  }
}

TEST(CompositeProp, StateCleanAcrossInterleavedQueries) {
  const Netlist nl = make_named_circuit("g200");
  const PatternSet patterns = PatternSet::random(128, nl.n_inputs(), 26);
  SingleFaultPropagator prop(nl, patterns);
  BridgeUniverseConfig cfg;
  cfg.count = 8;
  cfg.seed = 8;
  const std::vector<Fault> bridges = sample_bridge_faults(nl, cfg);
  const std::vector<Fault> stucks = all_stuck_at_faults(nl);
  const std::vector<Fault> m1 = {bridges[0], stucks[10], stucks[99]};
  const std::vector<Fault> m2 = {stucks[5], bridges[2]};
  const ErrorSignature first = prop.signature(std::span<const Fault>(m1));
  const ErrorSignature solo = prop.signature(stucks[42]);
  prop.signature(std::span<const Fault>(m2));
  prop.signature(stucks[7]);
  EXPECT_EQ(prop.signature(std::span<const Fault>(m1)), first);
  EXPECT_EQ(prop.signature(stucks[42]), solo);
}

// ---- context-level composite evaluation -------------------------------------

// One failing device on g200 with two stuck-at defects; every context
// below diagnoses the same datalog.
struct ContextCase {
  Netlist netlist = make_named_circuit("g200");
  PatternSet patterns = PatternSet::random(256, netlist.n_inputs(), 17);
  PatternSet good = simulate(netlist, patterns);
  std::vector<Fault> defect{Fault::stem_sa(netlist.find_net("g_10"), true),
                            Fault::stem_sa(netlist.find_net("g_90"), false)};
  Datalog log = datalog_from_defect(netlist, defect, patterns, good);
};

TEST(ContextComposite, MemoServesRepeatQueriesIdentically) {
  const ContextCase tc;
  DiagnosisContext ctx(tc.netlist, tc.patterns, tc.log);
  ASSERT_GT(ctx.n_candidates(), 4u);

  // Stuck-at-only multiplets: always convergent, so a fresh reference
  // simulator per query is exact (see the file comment).
  std::vector<Fault> universe;
  for (std::size_t i = 0; i < ctx.n_candidates(); ++i)
    if (ctx.candidate(i).is_stuck_at()) universe.push_back(ctx.candidate(i));
  ASSERT_GT(universe.size(), 4u);

  obs::Counter& hits = obs::registry().counter("diag.composite_memo_hits");
  obs::Counter& evals = obs::registry().counter("diag.composite_evals");
  const std::uint64_t hits_before = hits.value();
  const std::uint64_t evals_before = evals.value();

  std::mt19937_64 rng(11);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<Fault> m = draw_multiplet(universe, rng, 2 + rng() % 3);
    FaultSimulator reference(tc.netlist, tc.patterns, tc.good);
    const ErrorSignature expected =
        reference.signature(std::span<const Fault>(m));
    ASSERT_EQ(ctx.multiplet_signature(m), expected) << "iter " << iter;
    // The repeat — and the member order must not matter to the memo.
    std::reverse(m.begin(), m.end());
    ASSERT_EQ(ctx.multiplet_signature(m), expected) << "iter " << iter;
  }
  EXPECT_GE(hits.value() - hits_before, 10u);
  EXPECT_LE(evals.value() - evals_before, 10u);
}

TEST(ContextComposite, AttachedMemoIsSharedAcrossContexts) {
  const ContextCase tc;
  CompositeMemo shared(16ull << 20);

  DiagnosisContext ctx1(tc.netlist, tc.patterns, tc.log);
  ctx1.attach_composite_memo(&shared);
  std::vector<Fault> m;
  for (std::size_t i = 0; i < ctx1.n_candidates() && m.size() < 3; ++i)
    if (ctx1.candidate(i).is_stuck_at()) m.push_back(ctx1.candidate(i));
  ASSERT_EQ(m.size(), 3u);
  const ErrorSignature first = ctx1.multiplet_signature(m);

  // A second context (a later request for the same circuit) must be
  // served from the shared memo without re-propagating.
  obs::Counter& evals = obs::registry().counter("diag.composite_evals");
  const std::uint64_t evals_before = evals.value();
  DiagnosisContext ctx2(tc.netlist, tc.patterns, tc.log);
  ctx2.attach_composite_memo(&shared);
  EXPECT_EQ(ctx2.multiplet_signature(m), first);
  EXPECT_EQ(evals.value(), evals_before);
  EXPECT_GT(shared.stats().hits, 0u);
}

TEST(ContextComposite, DiagnosisIdenticalAcrossThreadCountsAndEvalPaths) {
  const ContextCase tc;

  // Reference run: composites through the full-circuit simulator.
  std::vector<Fault> expected;
  {
    DiagnosisContext ctx(tc.netlist, tc.patterns, tc.log);
    ctx.use_reference_composites(true);
    expected = diagnose_multiplet(ctx).suspect_faults();
  }
  ASSERT_FALSE(expected.empty());

  const ExecPolicy policies[] = {ExecPolicy::serial(), ExecPolicy::parallel(2),
                                 ExecPolicy::parallel(8)};
  for (const ExecPolicy& policy : policies) {
    SCOPED_TRACE(policy.n_threads);
    DiagnosisContext ctx(tc.netlist, tc.patterns, tc.log);
    ctx.warm_solo_signatures(policy);
    const DiagnosisReport r = diagnose_multiplet(ctx);
    EXPECT_EQ(r.suspect_faults(), expected);
  }
}

}  // namespace
}  // namespace mdd
