// Regression tests for three multiplet-diagnoser loop bugs: restart
// seeding order under score ties, deadline polling inside the refinement
// swap pass, and the reported scored-candidate count.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "core/cancel.hpp"
#include "diag/multiplet.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

using Clock = std::chrono::steady_clock;

struct Case {
  Netlist netlist;
  PatternSet patterns;
  PatternSet good;

  explicit Case(const std::string& name, std::size_t n_patterns = 256,
                std::uint64_t seed = 17)
      : netlist(make_named_circuit(name)),
        patterns(PatternSet::random(n_patterns, netlist.n_inputs(), seed)),
        good(simulate(netlist, patterns)) {}

  Datalog log(std::span<const Fault> defect) const {
    return datalog_from_defect(netlist, defect, patterns, good);
  }
};

// ---- restart seeding under score ties ---------------------------------------

// A long buffer chain makes every stuck-at along it logically identical:
// dozens of round-1 seeds tie at the exact-explanation score. The restart
// sort must break those ties by fault identity — sorting by score alone
// leaves the winning seed (and hence the reported suspect) at the mercy of
// std::sort's treatment of equal elements.
TEST(MultipletFixes, TiedSeedsResolveToSmallestFault) {
  Netlist nl("chain");
  NetId prev = nl.add_input("a");
  for (int i = 0; i < 40; ++i)
    prev = nl.add_gate(GateKind::Buf, {prev}, "b" + std::to_string(i));
  nl.mark_output(prev);
  nl.finalize();
  const PatternSet patterns = PatternSet::random(64, nl.n_inputs(), 7);
  const PatternSet good = simulate(nl, patterns);

  const Fault defect = Fault::stem_sa(nl.find_net("b20"), false);
  const Datalog log =
      datalog_from_defect(nl, {&defect, 1}, patterns, good);
  DiagnosisContext ctx(nl, patterns, log);

  const DiagnosisReport r = diagnose_multiplet(ctx);
  ASSERT_EQ(r.suspects.size(), 1u);

  // The specified winner among tied seeds: the identity-smallest candidate
  // whose solo signature explains the log exactly.
  bool found = false;
  Fault expected{};
  for (std::size_t i = 0; i < ctx.n_candidates(); ++i) {
    if (!(ctx.solo_signature(i) == ctx.observed())) continue;
    if (!found || ctx.candidate(i) < expected) expected = ctx.candidate(i);
    found = true;
  }
  ASSERT_TRUE(found);
  EXPECT_EQ(r.suspects[0].fault, expected);
}

// ---- deadline polling in the refinement swap pass ---------------------------

// With max_multiplicity=1 every composite evaluation happens inside the
// swap pass's inner loop, and seeding every shortlisted singleton as a
// restart guarantees no swap can improve — the sweep runs end to end. A
// deadline placed a few evaluations into that sweep must stop it within
// about one evaluation, not after the whole shortlist.
TEST(MultipletFixes, SwapPassHonorsDeadline) {
  const Case tc("g200");
  const std::vector<Fault> defect{
      Fault::stem_sa(tc.netlist.find_net("g_10"), true),
      Fault::stem_sa(tc.netlist.find_net("g_90"), false)};
  const Datalog log = tc.log(defect);
  DiagnosisContext ctx(tc.netlist, tc.patterns, log);
  // The reference simulators make each composite evaluation expensive
  // enough to time; the fix under test is eval-path independent.
  ctx.use_reference_composites(true);

  MultipletOptions opt;
  opt.max_multiplicity = 1;
  opt.shortlist = 2 * ctx.n_candidates();
  opt.restarts = opt.shortlist;
  opt.report_alternates = false;

  // Calibrate one reference composite evaluation.
  const Fault probe = defect[0];
  auto t0 = Clock::now();
  (void)ctx.multiplet_signature({&probe, 1});
  const auto t_eval = Clock::now() - t0;

  // Warm the solo cache, then measure the pre-refinement runtime on the
  // warm context so the deadline can be placed inside the swap sweep.
  MultipletOptions measure = opt;
  measure.refine = false;
  (void)diagnose_multiplet(ctx, measure);
  t0 = Clock::now();
  (void)diagnose_multiplet(ctx, measure);
  const auto t_pre = Clock::now() - t0;

  const auto budget = t_pre + 25 * t_eval;
  const CancelToken token(Clock::now() + budget);
  opt.cancel = &token;
  t0 = Clock::now();
  const DiagnosisReport r = diagnose_multiplet(ctx, opt);
  const auto elapsed = Clock::now() - t0;

  ASSERT_TRUE(r.timed_out);
  // Pre-fix the sweep runs its remaining few-hundred evaluations past the
  // deadline; post-fix the overshoot is at most ~one evaluation.
  EXPECT_LT(elapsed, budget + 10 * t_eval + std::chrono::milliseconds(20))
      << "swap pass overshot its deadline";
}

// ---- n_candidates_scored ----------------------------------------------------

TEST(MultipletFixes, ScoredCountReflectsActualWork) {
  const Case tc("g200");
  const std::vector<Fault> defect{
      Fault::stem_sa(tc.netlist.find_net("g_10"), true),
      Fault::stem_sa(tc.netlist.find_net("g_90"), false)};
  const Datalog log = tc.log(defect);

  {
    DiagnosisContext ctx(tc.netlist, tc.patterns, log);
    const DiagnosisReport r = diagnose_multiplet(ctx);
    EXPECT_EQ(r.n_candidates_scored, ctx.n_candidates());
  }
  {
    // A token cancelled before the first candidate: nothing was scored,
    // and the report must say so instead of claiming the whole pool.
    DiagnosisContext ctx(tc.netlist, tc.patterns, log);
    CancelToken token;
    token.request_cancel();
    MultipletOptions opt;
    opt.cancel = &token;
    const DiagnosisReport r = diagnose_multiplet(ctx, opt);
    EXPECT_TRUE(r.timed_out);
    EXPECT_EQ(r.n_candidates_scored, 0u);
    EXPECT_TRUE(r.suspects.empty());
  }
}

}  // namespace
}  // namespace mdd
