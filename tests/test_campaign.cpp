// Unit tests: defect sampling and the campaign driver.
#include <gtest/gtest.h>

#include "workload/campaign.hpp"
#include "workload/circuits.hpp"

namespace mdd {
namespace {

class CampaignFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    circuit_ = new BenchCircuit(load_bench_circuit("g200"));
    fsim_ = new FaultSimulator(circuit_->netlist, circuit_->patterns);
  }
  static void TearDownTestSuite() {
    delete fsim_;
    delete circuit_;
    fsim_ = nullptr;
    circuit_ = nullptr;
  }
  static BenchCircuit* circuit_;
  static FaultSimulator* fsim_;
};
BenchCircuit* CampaignFixture::circuit_ = nullptr;
FaultSimulator* CampaignFixture::fsim_ = nullptr;

TEST_F(CampaignFixture, SampleRespectsMultiplicityAndDistinctness) {
  std::mt19937_64 rng(1);
  DefectSampleConfig cfg;
  cfg.multiplicity = 3;
  for (int iter = 0; iter < 10; ++iter) {
    const auto defect =
        sample_defect(circuit_->netlist, *fsim_, cfg, rng);
    ASSERT_TRUE(defect.has_value());
    EXPECT_EQ(defect->size(), 3u);
    for (std::size_t i = 0; i < defect->size(); ++i)
      for (std::size_t j = i + 1; j < defect->size(); ++j)
        EXPECT_NE((*defect)[i].net, (*defect)[j].net);
  }
}

TEST_F(CampaignFixture, SampledMembersAreDetectable) {
  std::mt19937_64 rng(2);
  DefectSampleConfig cfg;
  cfg.multiplicity = 2;
  for (int iter = 0; iter < 10; ++iter) {
    const auto defect =
        sample_defect(circuit_->netlist, *fsim_, cfg, rng);
    ASSERT_TRUE(defect.has_value());
    for (const Fault& f : *defect)
      EXPECT_TRUE(fsim_->detects(f)) << to_string(f, circuit_->netlist);
  }
}

TEST_F(CampaignFixture, ForcedInteractionSharesOutputs) {
  std::mt19937_64 rng(3);
  DefectSampleConfig cfg;
  cfg.multiplicity = 3;
  cfg.interaction = InteractionLevel::SharedOutputs;
  const Netlist& nl = circuit_->netlist;
  for (int iter = 0; iter < 10; ++iter) {
    const auto defect = sample_defect(nl, *fsim_, cfg, rng);
    ASSERT_TRUE(defect.has_value());
    std::vector<bool> first_pos(nl.n_outputs(), false);
    for (std::uint32_t po : nl.reachable_outputs((*defect)[0].net))
      first_pos[po] = true;
    for (std::size_t m = 1; m < defect->size(); ++m) {
      bool shares = false;
      for (std::uint32_t po : nl.reachable_outputs((*defect)[m].net))
        shares = shares || first_pos[po];
      EXPECT_TRUE(shares) << "member " << m;
    }
  }
}

TEST_F(CampaignFixture, BridgeFractionHonored) {
  std::mt19937_64 rng(4);
  DefectSampleConfig cfg;
  cfg.multiplicity = 4;
  cfg.bridge_fraction = 1.0;
  const auto defect = sample_defect(circuit_->netlist, *fsim_, cfg, rng);
  ASSERT_TRUE(defect.has_value());
  for (const Fault& f : *defect) EXPECT_TRUE(f.is_bridge());

  cfg.bridge_fraction = 0.0;
  const auto defect2 = sample_defect(circuit_->netlist, *fsim_, cfg, rng);
  ASSERT_TRUE(defect2.has_value());
  for (const Fault& f : *defect2) EXPECT_TRUE(f.is_stuck_at());
}

TEST_F(CampaignFixture, SamplingDeterministicInSeed) {
  DefectSampleConfig cfg;
  cfg.multiplicity = 2;
  std::mt19937_64 rng1(9), rng2(9);
  const auto a = sample_defect(circuit_->netlist, *fsim_, cfg, rng1);
  const auto b = sample_defect(circuit_->netlist, *fsim_, cfg, rng2);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(*a, *b);
}

TEST_F(CampaignFixture, RunCampaignAggregates) {
  CampaignConfig cfg;
  cfg.n_cases = 8;
  cfg.defect.multiplicity = 2;
  cfg.seed = 5;
  const CampaignResult r =
      run_campaign(circuit_->netlist, circuit_->patterns, cfg);
  EXPECT_GT(r.n_cases, 0u);
  EXPECT_LE(r.n_cases, 8u);
  EXPECT_EQ(r.single.n_cases, r.n_cases);
  EXPECT_EQ(r.slat.n_cases, r.n_cases);
  EXPECT_EQ(r.multiplet.n_cases, r.n_cases);
  EXPECT_GT(r.avg_failing_patterns, 0.0);
  EXPECT_GE(r.multiplet.avg_hit_rate(), 0.0);
  EXPECT_LE(r.multiplet.avg_hit_rate(), 1.0);
  EXPECT_GT(r.avg_slat_fraction, 0.0);
}

TEST_F(CampaignFixture, CampaignDeterministic) {
  CampaignConfig cfg;
  cfg.n_cases = 4;
  cfg.defect.multiplicity = 2;
  cfg.seed = 11;
  const CampaignResult a =
      run_campaign(circuit_->netlist, circuit_->patterns, cfg);
  const CampaignResult b =
      run_campaign(circuit_->netlist, circuit_->patterns, cfg);
  EXPECT_EQ(a.n_cases, b.n_cases);
  EXPECT_DOUBLE_EQ(a.multiplet.avg_hit_rate(), b.multiplet.avg_hit_rate());
  EXPECT_DOUBLE_EQ(a.slat.avg_hit_rate(), b.slat.avg_hit_rate());
}

TEST_F(CampaignFixture, SingleDefectCampaignIsNearPerfect) {
  CampaignConfig cfg;
  cfg.n_cases = 10;
  cfg.defect.multiplicity = 1;
  cfg.defect.bridge_fraction = 0.0;
  cfg.seed = 21;
  const CampaignResult r =
      run_campaign(circuit_->netlist, circuit_->patterns, cfg);
  ASSERT_GT(r.n_cases, 5u);
  EXPECT_GE(r.multiplet.avg_hit_rate(), 0.9);
  EXPECT_GE(r.single.first_hit_rate(), 0.9);
  EXPECT_GE(r.multiplet.exact_rate(), 0.9);
}

TEST(MethodAggregate, AddAccumulates) {
  MethodAggregate agg;
  agg.method = "m";
  TruthEvaluation ev;
  ev.n_injected = 2;
  ev.n_hit = 1;
  ev.hit_rate = 0.5;
  ev.precision = 1.0;
  ev.resolution = 0.5;
  ev.all_hit = false;
  ev.first_hit = true;
  DiagnosisReport report;
  report.explains_all = true;
  report.cpu_seconds = 0.25;
  agg.add(ev, report);
  agg.add(ev, report);
  EXPECT_EQ(agg.n_cases, 2u);
  EXPECT_DOUBLE_EQ(agg.avg_hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(agg.first_hit_rate(), 1.0);
  EXPECT_DOUBLE_EQ(agg.exact_rate(), 1.0);
  EXPECT_DOUBLE_EQ(agg.avg_cpu_ms(), 250.0);
}

TEST(Circuits, RegistryLoads) {
  const auto names = standard_circuit_names();
  EXPECT_GE(names.size(), 8u);
  // Spot-check one small and one generated.
  const BenchCircuit c17 = load_bench_circuit("c17");
  EXPECT_GT(c17.patterns.n_patterns(), 0u);
  EXPECT_DOUBLE_EQ(c17.tpg.effective_coverage(), 1.0);
}

}  // namespace
}  // namespace mdd
