// Unit tests: Graphviz DOT export.
#include <gtest/gtest.h>

#include "netlist/dot.hpp"
#include "netlist/generator.hpp"

namespace mdd {
namespace {

TEST(Dot, StructureAndShapes) {
  const Netlist nl = make_c17();
  const std::string dot = write_dot_string(nl);
  EXPECT_NE(dot.find("digraph \"c17\""), std::string::npos);
  // One node statement per net.
  std::size_t nodes = 0;
  for (NetId n = 0; n < nl.n_nets(); ++n)
    if (dot.find("n" + std::to_string(n) + " [label=") != std::string::npos)
      ++nodes;
  EXPECT_EQ(nodes, nl.n_nets());
  // PIs are triangles, POs double circles, gates boxes.
  EXPECT_NE(dot.find("shape=triangle"), std::string::npos);
  EXPECT_NE(dot.find("shape=doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  // One edge per fanin connection.
  std::size_t edges = 0, expected = 0;
  for (NetId n = 0; n < nl.n_nets(); ++n) expected += nl.fanins(n).size();
  std::size_t pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++edges;
    pos += 4;
  }
  EXPECT_EQ(edges, expected);
}

TEST(Dot, HighlightsSuspects) {
  const Netlist nl = make_c17();
  DotOptions opt;
  opt.highlight = {nl.find_net("16")};
  const std::string dot = write_dot_string(nl, opt);
  const std::size_t node_pos =
      dot.find("n" + std::to_string(nl.find_net("16")) + " [label=");
  ASSERT_NE(node_pos, std::string::npos);
  const std::size_t line_end = dot.find('\n', node_pos);
  EXPECT_NE(dot.substr(node_pos, line_end - node_pos).find("fillcolor"),
            std::string::npos);
}

TEST(Dot, EdgeLabelsOptional) {
  const Netlist nl = make_c17();
  DotOptions opt;
  opt.edge_labels = true;
  EXPECT_NE(write_dot_string(nl, opt).find("label=\"16\""),
            std::string::npos);
  EXPECT_EQ(write_dot_string(nl).find("-> n [label"), std::string::npos);
}

TEST(Dot, RankingOptional) {
  const Netlist nl = make_c17();
  DotOptions ranked;
  EXPECT_NE(write_dot_string(nl, ranked).find("rank=same"),
            std::string::npos);
  DotOptions flat;
  flat.ranked = false;
  EXPECT_EQ(write_dot_string(nl, flat).find("rank=same"), std::string::npos);
}

}  // namespace
}  // namespace mdd
