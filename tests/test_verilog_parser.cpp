// Unit tests: structural Verilog subset reader/writer.
#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "netlist/verilog_parser.hpp"
#include "sim/sim2.hpp"

namespace mdd {
namespace {

const CellLibrary& lib() {
  static const CellLibrary instance;
  return instance;
}

TEST(VerilogParser, PrimitivesPositional) {
  const char* text = R"(
// simple mux built from primitives
module m (a, b, s, z);
  input a, b, s;
  output z;
  wire ns, t0, t1;
  not g0 (ns, s);
  and g1 (t0, a, ns);
  and g2 (t1, b, s);
  or  g3 (z, t0, t1);
endmodule
)";
  const VerilogParseResult r = parse_verilog_string(text, lib());
  EXPECT_EQ(r.n_cells, 0u);
  EXPECT_EQ(r.netlist.n_inputs(), 3u);
  EXPECT_EQ(r.netlist.n_outputs(), 1u);
  const PatternSet stimuli = PatternSet::exhaustive(3);
  const PatternSet resp = simulate(r.netlist, stimuli);
  for (std::size_t p = 0; p < 8; ++p) {
    const bool a = p & 1, b = (p >> 1) & 1, s = (p >> 2) & 1;
    EXPECT_EQ(resp.get(p, 0), s ? b : a) << p;
  }
}

TEST(VerilogParser, LibraryCellNamedPorts) {
  const char* text = R"(
module m (a, b, c, z);
  input a, b, c;
  output z;
  AOI21 u1 (.Y(z), .A(a), .B(b), .C(c));
endmodule
)";
  const VerilogParseResult r = parse_verilog_string(text, lib());
  EXPECT_EQ(r.n_cells, 1u);
  ASSERT_EQ(r.netlist.cell_instances().size(), 1u);
  EXPECT_EQ(r.netlist.cell_instances()[0].cell_name, "AOI21");
  const PatternSet stimuli = PatternSet::exhaustive(3);
  const PatternSet resp = simulate(r.netlist, stimuli);
  for (std::size_t p = 0; p < 8; ++p) {
    const bool a = p & 1, b = (p >> 1) & 1, c = (p >> 2) & 1;
    EXPECT_EQ(resp.get(p, 0), !((a && b) || c)) << p;
  }
}

TEST(VerilogParser, LibraryCellPositionalAndLiterals) {
  const char* text = R"(
module m (a, z, z2);
  input a;
  output z, z2;
  wire w;
  NAND2 u1 (w, a, 1'b1);   /* == NOT(a) */
  assign z = w;
  XOR2 u2 (z2, a, 1'b0);   // == BUF(a)
endmodule
)";
  const VerilogParseResult r = parse_verilog_string(text, lib());
  EXPECT_EQ(r.n_cells, 2u);
  const PatternSet stimuli = PatternSet::exhaustive(1);
  const PatternSet resp = simulate(r.netlist, stimuli);
  EXPECT_EQ(resp.get(0, 0), true);
  EXPECT_EQ(resp.get(1, 0), false);
  EXPECT_EQ(resp.get(0, 1), false);
  EXPECT_EQ(resp.get(1, 1), true);
}

TEST(VerilogParser, BusDeclarationExpands) {
  const char* text = R"(
module m (d, z);
  input [1:0] d;
  output z;
  and g (z, d_1, d_0);
endmodule
)";
  const VerilogParseResult r = parse_verilog_string(text, lib());
  EXPECT_EQ(r.netlist.n_inputs(), 2u);
  EXPECT_NE(r.netlist.find_net("d_0"), kNoNet);
  EXPECT_NE(r.netlist.find_net("d_1"), kNoNet);
}

TEST(VerilogParser, OutOfOrderResolution) {
  const char* text = R"(
module m (a, z);
  input a;
  output z;
  wire w1, w2;
  not g2 (z, w2);
  and g1 (w2, w1, a);
  not g0 (w1, a);
endmodule
)";
  const VerilogParseResult r = parse_verilog_string(text, lib());
  EXPECT_EQ(r.netlist.n_gates(), 3u);
}

TEST(VerilogParser, Errors) {
  EXPECT_THROW(parse_verilog_string("module m (a);\n input a;\nendmodule",
                                    lib()),
               std::runtime_error);  // no outputs at finalize
  EXPECT_THROW(parse_verilog_string(
                   "module m (a, z);\n input a;\n output z;\n"
                   " FOO u1 (z, a);\nendmodule",
                   lib()),
               std::runtime_error);  // unknown cell
  EXPECT_THROW(parse_verilog_string(
                   "module m (a, z);\n input a;\n output z;\n"
                   " AOI21 u1 (z, a);\nendmodule",
                   lib()),
               std::runtime_error);  // pin count
  EXPECT_THROW(parse_verilog_string(
                   "module m (a, z);\n input a;\n output z;\n"
                   " not g (z, w);\nendmodule",
                   lib()),
               std::runtime_error);  // undriven wire
  EXPECT_THROW(parse_verilog_string(
                   "module m (a, z);\n input a;\n output z;\n"
                   " not g1 (z, w);\n not g2 (w, z);\nendmodule",
                   lib()),
               std::runtime_error);  // combinational loop
}

TEST(VerilogParser, RoundTripPreservesBehaviour) {
  for (const char* name : {"c17", "add8", "mux16", "g200"}) {
    const Netlist original = make_named_circuit(name);
    const std::string text = write_verilog_string(original);
    const Netlist reparsed = parse_verilog_string(text, lib()).netlist;
    ASSERT_EQ(reparsed.n_inputs(), original.n_inputs()) << name;
    ASSERT_EQ(reparsed.n_outputs(), original.n_outputs()) << name;
    const PatternSet stimuli =
        PatternSet::random(192, original.n_inputs(), 5);
    ASSERT_EQ(simulate(reparsed, stimuli), simulate(original, stimuli))
        << name;
  }
}

}  // namespace
}  // namespace mdd
