// Unit tests: option knobs across the public API — each test checks the
// knob's *observable contract*, not just that it parses.
#include <gtest/gtest.h>

#include <random>

#include "atpg/tpg.hpp"
#include "diag/dictionary.hpp"
#include "diag/metrics.hpp"
#include "diag/multiplet.hpp"
#include "diag/single_fault.hpp"
#include "diag/slat.hpp"
#include "netlist/generator.hpp"
#include "workload/campaign.hpp"
#include "workload/circuits.hpp"

namespace mdd {
namespace {

struct Device {
  Netlist netlist = make_named_circuit("g200");
  PatternSet patterns = PatternSet::random(256, netlist.n_inputs(), 0x0707);
  PatternSet good = simulate(netlist, patterns);
  std::vector<Fault> defect{
      Fault::stem_sa(netlist.find_net("g_40"), true),
      Fault::stem_sa(netlist.find_net("g_150"), false)};
  Datalog log =
      datalog_from_defect(netlist, defect, patterns, good);
};

Device& device() {
  static Device d;
  return d;
}

TEST(Options, SingleFaultNoAlternates) {
  Device& d = device();
  DiagnosisContext ctx(d.netlist, d.patterns, d.log);
  SingleFaultOptions opt;
  opt.report_alternates = false;
  opt.top_k = 5;
  const DiagnosisReport r = diagnose_single_fault(ctx, opt);
  EXPECT_LE(r.suspects.size(), 5u);
  for (const ScoredCandidate& sc : r.suspects)
    EXPECT_TRUE(sc.alternates.empty());
}

TEST(Options, SlatMultiplicityCap) {
  Device& d = device();
  DiagnosisContext ctx(d.netlist, d.patterns, d.log);
  SlatOptions opt;
  opt.max_multiplicity = 1;
  const DiagnosisReport r = diagnose_slat(ctx, opt);
  EXPECT_LE(r.suspects.size(), 1u);
}

TEST(Options, MultipletSingleMemberCap) {
  Device& d = device();
  DiagnosisContext ctx(d.netlist, d.patterns, d.log);
  MultipletOptions opt;
  opt.max_multiplicity = 1;
  const DiagnosisReport r = diagnose_multiplet(ctx, opt);
  EXPECT_LE(r.suspects.size(), 1u);
}

TEST(Options, MultipletZeroRestartsStillSeedsOnce) {
  // restarts=1 must behave like plain greedy and still diagnose.
  Device& d = device();
  DiagnosisContext ctx(d.netlist, d.patterns, d.log);
  MultipletOptions opt;
  opt.restarts = 1;
  const DiagnosisReport r = diagnose_multiplet(ctx, opt);
  EXPECT_FALSE(r.suspects.empty());
}

TEST(Options, CandidateTraceBudgetStillFindsSupport) {
  Device& d = device();
  CandidateOptions opt;
  opt.max_traced_patterns = 4;  // tiny budget, spread across the log
  const CandidatePool pool =
      extract_candidates(d.netlist, d.patterns, d.log, opt);
  EXPECT_FALSE(pool.faults.empty());
  // Support can never exceed traced (pattern, output) pairs.
  std::size_t max_pairs = 0;
  for (std::size_t i = 0;
       i < std::min<std::size_t>(d.log.observed.n_failing_patterns(), 4); ++i)
    max_pairs += d.netlist.n_outputs();
  EXPECT_LE(pool.support.front(), max_pairs);
}

TEST(Options, DictionaryWithoutBridges) {
  Device& d = device();
  DictionaryOptions opt;
  opt.include_bridges = false;
  const FaultDictionary dict(d.netlist, d.patterns, opt);
  const CollapsedFaults cf(d.netlist);
  EXPECT_EQ(dict.n_entries(), cf.representatives().size());
}

TEST(Options, TpgMaxPatternsCap) {
  const Netlist nl = make_named_circuit("g200");
  TpgOptions opt;
  opt.max_patterns = 10;
  opt.compact = false;
  const TpgResult r = generate_tests(nl, opt);
  EXPECT_LE(r.patterns.n_patterns(), 10u);
}

TEST(Options, TpgNoCompactKeepsMorePatterns) {
  const Netlist nl = make_named_circuit("add8");
  TpgOptions a;
  a.compact = false;
  a.seed = 4;
  TpgOptions b = a;
  b.compact = true;
  const TpgResult ra = generate_tests(nl, a);
  const TpgResult rb = generate_tests(nl, b);
  EXPECT_GE(ra.patterns.n_patterns(), rb.patterns.n_patterns());
  EXPECT_EQ(ra.n_detected, rb.n_detected);  // compaction preserves coverage
}

TEST(Options, BenchRegistryDeterministic) {
  const BenchCircuit a = load_bench_circuit("c17");
  const BenchCircuit b = load_bench_circuit("c17");
  EXPECT_EQ(a.patterns, b.patterns);
  EXPECT_EQ(a.tpg.n_detected, b.tpg.n_detected);
}

TEST(Options, CampaignDisabledMethodsSkipped) {
  Device& d = device();
  CampaignConfig cfg;
  cfg.n_cases = 3;
  cfg.run_single = false;
  cfg.run_slat = false;
  const CampaignResult r = run_campaign(d.netlist, d.patterns, cfg);
  EXPECT_EQ(r.single.n_cases, 0u);
  EXPECT_EQ(r.slat.n_cases, 0u);
  EXPECT_EQ(r.multiplet.n_cases, r.n_cases);
}

}  // namespace
}  // namespace mdd
