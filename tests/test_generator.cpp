// Unit tests: benchmark circuit generators.
#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"
#include "sim/sim2.hpp"

namespace mdd {
namespace {

TEST(Generator, C17Shape) {
  const Netlist nl = make_c17();
  EXPECT_EQ(nl.n_inputs(), 5u);
  EXPECT_EQ(nl.n_gates(), 6u);
  EXPECT_EQ(nl.n_outputs(), 2u);
}

/// The adder must add: exhaustive for 2 bits, sampled for 8.
TEST(Generator, RippleAdderAdds) {
  for (unsigned bits : {2u, 8u}) {
    const Netlist nl = make_ripple_adder(bits);
    ASSERT_EQ(nl.n_inputs(), 2 * bits + 1);
    ASSERT_EQ(nl.n_outputs(), bits + 1);
    const std::size_t n_cases = bits == 2 ? 32 : 256;
    PatternSet stimuli(0, nl.n_inputs());
    std::vector<std::uint64_t> as, bs, cins;
    std::mt19937_64 rng(3);
    for (std::size_t i = 0; i < n_cases; ++i) {
      const std::uint64_t a =
          bits == 2 ? (i & 3) : (rng() & ((1u << bits) - 1));
      const std::uint64_t b =
          bits == 2 ? ((i >> 2) & 3) : (rng() & ((1u << bits) - 1));
      const std::uint64_t cin = bits == 2 ? ((i >> 4) & 1) : (rng() & 1);
      std::vector<bool> pat(nl.n_inputs());
      for (unsigned j = 0; j < bits; ++j) pat[j] = (a >> j) & 1;
      for (unsigned j = 0; j < bits; ++j) pat[bits + j] = (b >> j) & 1;
      pat[2 * bits] = cin;
      stimuli.append(pat);
      as.push_back(a);
      bs.push_back(b);
      cins.push_back(cin);
    }
    const PatternSet resp = simulate(nl, stimuli);
    for (std::size_t i = 0; i < n_cases; ++i) {
      const std::uint64_t expected = as[i] + bs[i] + cins[i];
      std::uint64_t got = 0;
      for (unsigned j = 0; j <= bits; ++j)
        if (resp.get(i, j)) got |= (1u << j);
      ASSERT_EQ(got, expected) << "a=" << as[i] << " b=" << bs[i];
    }
  }
}

TEST(Generator, ParityTreeComputesParity) {
  const Netlist nl = make_parity_tree(64);
  EXPECT_EQ(nl.n_outputs(), 1u);
  const PatternSet stimuli = PatternSet::random(128, 64, 17);
  const PatternSet resp = simulate(nl, stimuli);
  for (std::size_t p = 0; p < 128; ++p) {
    int pop = 0;
    for (std::size_t i = 0; i < 64; ++i) pop += stimuli.get(p, i);
    ASSERT_EQ(resp.get(p, 0), (pop % 2) == 1) << p;
  }
}

TEST(Generator, MuxTreeSelects) {
  const Netlist nl = make_mux_tree(4);  // 16:1
  EXPECT_EQ(nl.n_inputs(), 4u + 16u);
  EXPECT_EQ(nl.cell_instances().size(), 15u);
  const PatternSet stimuli = PatternSet::random(256, nl.n_inputs(), 23);
  const PatternSet resp = simulate(nl, stimuli);
  for (std::size_t p = 0; p < 256; ++p) {
    unsigned sel = 0;
    for (unsigned s = 0; s < 4; ++s)
      if (stimuli.get(p, s)) sel |= (1u << s);
    ASSERT_EQ(resp.get(p, 0), stimuli.get(p, 4 + sel)) << p;
  }
}

TEST(Generator, RandomCircuitDeterministic) {
  RandomCircuitConfig cfg;
  cfg.n_gates = 150;
  cfg.seed = 99;
  const Netlist a = make_random_circuit(cfg);
  const Netlist b = make_random_circuit(cfg);
  EXPECT_EQ(write_bench_string(a), write_bench_string(b));
  cfg.seed = 100;
  const Netlist c = make_random_circuit(cfg);
  EXPECT_NE(write_bench_string(a), write_bench_string(c));
}

TEST(Generator, RandomCircuitValid) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    RandomCircuitConfig cfg;
    cfg.n_inputs = 16;
    cfg.n_gates = 120;
    cfg.n_outputs = 8;
    cfg.seed = seed;
    const Netlist nl = make_random_circuit(cfg);
    EXPECT_TRUE(nl.finalized());
    EXPECT_GE(nl.n_outputs(), cfg.n_outputs);
    // No dangling logic: every non-PO net has fanout.
    for (NetId n = 0; n < nl.n_nets(); ++n) {
      if (nl.output_index(n).has_value()) continue;
      if (nl.is_input(n)) continue;  // unused PIs tolerated
      EXPECT_FALSE(nl.fanouts(n).empty())
          << "dangling " << nl.net_name(n) << " seed " << seed;
    }
  }
}

TEST(Generator, NamedCircuits) {
  for (const char* name :
       {"c17", "add8", "add32", "par64", "mux16", "g200", "g1k"}) {
    const Netlist nl = make_named_circuit(name);
    EXPECT_TRUE(nl.finalized()) << name;
    EXPECT_EQ(nl.name(), name);
  }
  EXPECT_THROW(make_named_circuit("bogus"), std::invalid_argument);
  EXPECT_GT(make_named_circuit("g1k").n_gates(), 900u);
}

TEST(Generator, SizesRoughlyAsNamed) {
  EXPECT_NEAR(static_cast<double>(make_named_circuit("g200").n_gates()), 200,
              60);
  EXPECT_NEAR(static_cast<double>(make_named_circuit("g1k").n_gates()), 1000,
              200);
}

TEST(Generator, DegenerateConfigsRejected) {
  EXPECT_THROW(make_ripple_adder(0), std::invalid_argument);
  EXPECT_THROW(make_parity_tree(1), std::invalid_argument);
  EXPECT_THROW(make_mux_tree(0), std::invalid_argument);
  RandomCircuitConfig cfg;
  cfg.n_inputs = 1;
  EXPECT_THROW(make_random_circuit(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace mdd
