// openmdd_loadgen — closed-loop load generator for the diagnosis daemon.
//
//   openmdd_loadgen --circuit g200 [--cases 50] [--concurrency 1,4,8]
//   openmdd_loadgen --circuit g200 --connect 127.0.0.1:7411 [--shutdown]
//   openmdd_loadgen --circuit g200 --coldstart
//   openmdd_loadgen --circuit g1k --batch 16        # volume mode
//
// Builds a seed-deterministic corpus of tester datalogs (campaign-style
// defect sampling) for one circuit, then replays it at each requested
// concurrency and prints a throughput + latency-quantile table. Three
// execution modes:
//
//   inproc (default)  an in-process DiagnosisService: the resident
//                     serving path — session cache, bounded queue,
//                     worker pool — without socket overhead.
//   --connect H:P     an external openmdd_serve over TCP, one blocking
//                     connection per closed-loop worker.
//   --coldstart       the one-process-per-datalog baseline: every request
//                     re-parses the circuit, re-reads the patterns, and
//                     re-simulates the good machine before diagnosing.
//
// --batch N switches to volume mode: the corpus is chunked into
// `op=diagnose_batch` requests of N datalogs each (inproc or --connect),
// so the table's dlogs/s column measures the amortized streaming path
// against the per-request numbers from a plain run.
//
// After the runs the tool prints a per-op status breakdown and, for
// serving modes, the session memo hit rates (signature + composite
// layers, computed from stats deltas per concurrency level).
//
// With --circuit NAME the netlist/pattern files are emitted into
// --workdir first (the daemon loads sessions from files), so the tool is
// self-contained: no checked-in benchmark data needed.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "diag/multiplet.hpp"
#include "diag/single_fault.hpp"
#include "diag/slat.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/verilog_parser.hpp"
#include "server/serve.hpp"
#include "server/service.hpp"
#include "sim/sim2.hpp"
#include "workload/circuits.hpp"
#include "workload/loadgen.hpp"
#include "workload/table.hpp"
#include "workload/textio.hpp"

namespace {

using namespace mdd;

int usage() {
  std::cerr
      << "usage: openmdd_loadgen (--circuit NAME | --netlist F --patterns F)"
         " [options]\n"
         "  --circuit NAME        registry circuit (c17, add8, add32, par64,"
         " mux16, g200, g1k, g5k);\n"
         "                        emits NAME.bench/NAME.patterns into"
         " --workdir\n"
         "  --netlist F           netlist file (.bench or .v)\n"
         "  --patterns F          pattern file\n"
         "  --workdir DIR         where --circuit emits files (default .)\n"
         "  --cases N             corpus size (default 50)\n"
         "  --repeat N            replay the corpus N times per run"
         " (default 1)\n"
         "  --concurrency LIST    comma-separated client counts"
         " (default 1,4)\n"
         "  --seed N              corpus seed (default 1)\n"
         "  --method M            multiplet|slat|single|all"
         " (default multiplet)\n"
         "  --max-failing N       ATE-style truncation: stop each datalog"
         " after N failing patterns\n"
         "  --deadline-ms N       per-request deadline (default 0 = none)\n"
         "  --connect HOST:PORT   drive an external openmdd_serve over TCP\n"
         "  --coldstart           per-request circuit reload baseline\n"
         "  --batch N             volume mode: diagnose_batch requests of N"
         " datalogs each\n"
         "  --batch-threads N     datalog-level threads per batch request"
         " (inproc; default workers)\n"
         "  --workers N           inproc service workers (default 4)\n"
         "  --queue N             inproc queue depth (default 64)\n"
         "  --cache-mb N          inproc cache budget MiB (default 256)\n"
         "  --memo-mb N           inproc per-session signature-memo budget"
         " MiB (default 256)\n"
         "  --emit-corpus DIR     also write the datalogs to DIR\n"
         "  --shutdown            send {\"op\":\"shutdown\"} after the runs"
         " (--connect only)\n"
         "  --trace               request per-stage traces and print a"
         " stage breakdown table\n"
         "  --csv                 CSV instead of the aligned table\n";
  return 2;
}

std::size_t parse_count(const std::string& value, const std::string& flag) {
  std::size_t pos = 0;
  long long n = 0;
  try {
    n = std::stoll(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || n < 0)
    throw std::runtime_error(flag + " wants a non-negative integer, got '" +
                             value + "'");
  return static_cast<std::size_t>(n);
}

std::vector<std::size_t> parse_concurrency(const std::string& list) {
  std::vector<std::size_t> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const std::size_t c = parse_count(item, "--concurrency");
    if (c == 0) throw std::runtime_error("--concurrency entries must be > 0");
    out.push_back(c);
  }
  if (out.empty()) throw std::runtime_error("--concurrency: empty list");
  return out;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Netlist load_netlist(const std::string& path) {
  if (ends_with(path, ".bench")) return parse_bench_file(path).netlist;
  if (ends_with(path, ".v")) {
    static const CellLibrary lib;
    return parse_verilog_file(path, lib).netlist;
  }
  throw std::runtime_error("unknown netlist extension (want .bench or .v): " +
                           path);
}

struct RunConfig {
  std::string netlist_path;
  std::string patterns_path;
  std::string method = "multiplet";
  double deadline_ms = 0.0;
  bool trace = false;
};

server::Json make_request(const RunConfig& cfg, const LoadgenCase& lc,
                          std::size_t id) {
  server::Json r;
  r.set("id", id);
  r.set("op", "diagnose");
  r.set("netlist", cfg.netlist_path);
  r.set("patterns", cfg.patterns_path);
  r.set("datalog", lc.datalog_text);
  r.set("method", cfg.method);
  if (cfg.deadline_ms > 0.0) r.set("deadline_ms", cfg.deadline_ms);
  if (cfg.trace) r.set("trace", true);
  return r;
}

/// Volume-mode request: datalogs [first, first+count) of the replayed
/// corpus inline in one diagnose_batch.
server::Json make_batch_request(const RunConfig& cfg,
                                const std::vector<LoadgenCase>& corpus,
                                std::size_t first, std::size_t count,
                                std::size_t threads, std::size_t id) {
  server::Json r;
  r.set("id", id);
  r.set("op", "diagnose_batch");
  r.set("netlist", cfg.netlist_path);
  r.set("patterns", cfg.patterns_path);
  server::JsonArray datalogs;
  datalogs.reserve(count);
  for (std::size_t k = 0; k < count; ++k)
    datalogs.emplace_back(corpus[(first + k) % corpus.size()].datalog_text);
  r.set("datalogs", server::Json(std::move(datalogs)));
  r.set("method", cfg.method);
  if (threads > 0) r.set("threads", threads);
  if (cfg.deadline_ms > 0.0) r.set("deadline_ms", cfg.deadline_ms);
  return r;
}

/// Status counts per op across every response seen, plus per-datalog
/// failures inside diagnose_batch responses (which answer "ok" as a
/// request even when individual items errored).
class OpBreakdown {
 public:
  void add(const std::string& op, const server::Json& response) {
    std::lock_guard<std::mutex> lock(mutex_);
    Row& row = rows_[op];
    const std::string status = response.get_string("status", "error");
    if (status == "ok") ++row.ok;
    else if (status == "timeout") ++row.timeout;
    else if (status == "overloaded") ++row.overloaded;
    else ++row.error;
    row.item_errors +=
        static_cast<std::size_t>(response.get_number("n_errors", 0.0));
  }

  void print(std::ostream& os, bool csv) {
    TextTable table(
        {"op", "ok", "timeout", "overld", "err", "item_err"});
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [op, row] : rows_)
      table.add_row({op, std::to_string(row.ok),
                     std::to_string(row.timeout),
                     std::to_string(row.overloaded),
                     std::to_string(row.error),
                     std::to_string(row.item_errors)});
    if (csv)
      table.print_csv(os);
    else
      table.print(os);
  }

 private:
  struct Row {
    std::size_t ok = 0, timeout = 0, overloaded = 0, error = 0;
    std::size_t item_errors = 0;
  };
  std::mutex mutex_;
  std::map<std::string, Row> rows_;
};

/// Hit/miss totals of one memo layer pulled from a stats snapshot.
struct MemoSample {
  double sig_hits = 0, sig_misses = 0;
  double comp_hits = 0, comp_misses = 0;
};

MemoSample memo_sample(const server::Json& stats) {
  MemoSample s;
  if (const server::Json* memos = stats.find("memos")) {
    if (const server::Json* sig = memos->find("signature")) {
      s.sig_hits = sig->get_number("hits");
      s.sig_misses = sig->get_number("misses");
    }
    if (const server::Json* comp = memos->find("composite")) {
      s.comp_hits = comp->get_number("hits");
      s.comp_misses = comp->get_number("misses");
    }
  }
  return s;
}

/// "97.2" or "-" when the layer saw no traffic during the run.
std::string hit_rate(double hits, double misses) {
  const double total = hits + misses;
  if (total <= 0) return "-";
  return fmt(100.0 * hits / total, 1);
}

/// Accumulates the top-level stages of `"trace"` arrays across responses
/// (any worker thread) and prints mean/quantile rows per stage.
class StageStats {
 public:
  void add(const server::Json& response) {
    const server::Json* trace = response.find("trace");
    if (trace == nullptr || !trace->is_array()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const server::Json& span : trace->as_array()) {
      if (span.get_number("depth", 0.0) != 0.0) continue;
      samples_[span.get_string("stage")].push_back(span.get_number("ms"));
    }
  }

  void print(std::ostream& os, bool csv) {
    TextTable table(
        {"stage", "n", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"});
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [stage, samples] : samples_) {
      const LatencySummary s = summarize_latencies(samples);
      table.add_row({stage, std::to_string(s.n), fmt(s.mean_ms, 3),
                     fmt(s.p50_ms, 3), fmt(s.p95_ms, 3), fmt(s.p99_ms, 3),
                     fmt(s.max_ms, 3)});
    }
    if (csv)
      table.print_csv(os);
    else
      table.print(os);
  }

 private:
  std::mutex mutex_;
  std::map<std::string, std::vector<double>> samples_;
};

struct RunStats {
  std::size_t n_ok = 0;
  std::size_t n_timeout = 0;
  std::size_t n_overloaded = 0;
  std::size_t n_error = 0;
  double wall_s = 0.0;
  LatencySummary latency;

  void count(const std::string& status) {
    if (status == "ok") ++n_ok;
    else if (status == "timeout") ++n_timeout;
    else if (status == "overloaded") ++n_overloaded;
    else ++n_error;
  }
};

/// Issues `total` requests across `concurrency` closed-loop workers;
/// `make` builds request i, `execute` maps one request to a response
/// status string.
template <typename Make, typename Execute>
RunStats run_closed_loop(std::size_t total, std::size_t concurrency,
                         Make&& make, Execute&& execute) {
  std::atomic<std::size_t> next{0};
  std::vector<std::vector<double>> latencies(concurrency);
  std::vector<RunStats> partial(concurrency);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(concurrency);
    for (std::size_t w = 0; w < concurrency; ++w) {
      workers.emplace_back([&, w] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= total) return;
          const auto r0 = std::chrono::steady_clock::now();
          std::string status;
          try {
            status = execute(w, make(i));
          } catch (const std::exception& e) {
            std::cerr << "loadgen worker: " << e.what() << "\n";
            status = "error";
          }
          latencies[w].push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - r0)
                  .count());
          partial[w].count(status);
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }
  RunStats stats;
  stats.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  std::vector<double> all;
  all.reserve(total);
  for (std::size_t w = 0; w < concurrency; ++w) {
    all.insert(all.end(), latencies[w].begin(), latencies[w].end());
    stats.n_ok += partial[w].n_ok;
    stats.n_timeout += partial[w].n_timeout;
    stats.n_overloaded += partial[w].n_overloaded;
    stats.n_error += partial[w].n_error;
  }
  stats.latency = summarize_latencies(std::move(all));
  return stats;
}

/// One cold request: what a fresh `openmdd diagnose` process pays —
/// parse the netlist, read the patterns, simulate the good machine,
/// then diagnose. The session cache's reason for existing.
std::string execute_cold(const RunConfig& cfg, const server::Json& request) {
  const Netlist nl = load_netlist(cfg.netlist_path);
  const PatternSet patterns = read_patterns_file(cfg.patterns_path);
  if (patterns.n_signals() != nl.n_inputs())
    throw std::runtime_error("pattern width does not match netlist inputs");
  std::istringstream log_in(request.get_string("datalog"));
  const Datalog log = read_datalog(log_in, nl);

  std::optional<CancelToken> token;
  const CancelToken* cancel = nullptr;
  if (cfg.deadline_ms > 0.0) {
    token.emplace(CancelToken::Clock::now() +
                  std::chrono::milliseconds(
                      static_cast<long>(cfg.deadline_ms)));
    cancel = &*token;
  }
  DiagnosisContext ctx(nl, patterns, log);
  bool timed_out = false;
  const auto run = [&](const DiagnosisReport& report) {
    timed_out |= report.timed_out;
  };
  if (cfg.method == "multiplet" || cfg.method == "all") {
    MultipletOptions opt;
    opt.cancel = cancel;
    run(diagnose_multiplet(ctx, opt));
  }
  if (cfg.method == "slat" || cfg.method == "all") {
    SlatOptions opt;
    opt.cancel = cancel;
    run(diagnose_slat(ctx, opt));
  }
  if (cfg.method == "single" || cfg.method == "all") {
    SingleFaultOptions opt;
    opt.cancel = cancel;
    run(diagnose_single_fault(ctx, opt));
  }
  return timed_out ? "timeout" : "ok";
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit, netlist_path, patterns_path, workdir = ".";
  std::string connect, emit_corpus, concurrency_list = "1,4";
  RunConfig cfg;
  CorpusConfig corpus_cfg;
  std::size_t repeat = 1, batch = 0;
  bool coldstart = false, send_shutdown = false, csv = false;
  server::ServiceOptions service_opts;
  service_opts.n_workers = 4;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc)
          throw std::runtime_error("missing value for " + a);
        return argv[++i];
      };
      if (a == "--circuit") circuit = value();
      else if (a == "--netlist") netlist_path = value();
      else if (a == "--patterns") patterns_path = value();
      else if (a == "--workdir") workdir = value();
      else if (a == "--cases") corpus_cfg.n_cases = parse_count(value(), a);
      else if (a == "--repeat") repeat = parse_count(value(), a);
      else if (a == "--concurrency") concurrency_list = value();
      else if (a == "--seed") corpus_cfg.seed = parse_count(value(), a);
      else if (a == "--max-failing")
        corpus_cfg.datalog.max_failing_patterns = parse_count(value(), a);
      else if (a == "--method") cfg.method = value();
      else if (a == "--deadline-ms")
        cfg.deadline_ms = static_cast<double>(parse_count(value(), a));
      else if (a == "--connect") connect = value();
      else if (a == "--coldstart") coldstart = true;
      else if (a == "--batch") {
        batch = parse_count(value(), a);
        if (batch == 0) throw std::runtime_error("--batch must be at least 1");
      } else if (a == "--batch-threads")
        service_opts.batch_threads = parse_count(value(), a);
      else if (a == "--workers") {
        service_opts.n_workers = parse_count(value(), a);
        if (service_opts.n_workers == 0)
          throw std::runtime_error("--workers must be at least 1");
      } else if (a == "--queue") {
        service_opts.queue_depth = parse_count(value(), a);
        if (service_opts.queue_depth == 0)
          throw std::runtime_error("--queue must be at least 1");
      } else if (a == "--cache-mb") {
        service_opts.cache_bytes = parse_count(value(), a) << 20;
      } else if (a == "--memo-mb") {
        service_opts.memo_bytes = parse_count(value(), a) << 20;
      } else if (a == "--emit-corpus") emit_corpus = value();
      else if (a == "--shutdown") send_shutdown = true;
      else if (a == "--trace") cfg.trace = true;
      else if (a == "--csv") csv = true;
      else if (a == "--help" || a == "-h") return usage();
      else {
        std::cerr << "openmdd_loadgen: unknown option '" << a << "'\n";
        return usage();
      }
    }
    if (repeat == 0) throw std::runtime_error("--repeat must be at least 1");
    if (circuit.empty() == (netlist_path.empty() && patterns_path.empty()))
      throw std::runtime_error(
          "need exactly one of --circuit or --netlist/--patterns");
    if (coldstart && !connect.empty())
      throw std::runtime_error("--coldstart and --connect are exclusive");
    if (coldstart && cfg.trace)
      throw std::runtime_error(
          "--trace needs a serving response (inproc or --connect)");
    if (coldstart && batch > 0)
      throw std::runtime_error(
          "--batch needs a serving mode (inproc or --connect)");

    const std::vector<std::size_t> concurrencies =
        parse_concurrency(concurrency_list);

    // Materialize circuit + pattern files and the in-memory data the
    // corpus generator needs.
    Netlist netlist;
    PatternSet patterns;
    if (!circuit.empty()) {
      BenchCircuit bench = load_bench_circuit(circuit);
      netlist = std::move(bench.netlist);
      patterns = std::move(bench.patterns);
      std::filesystem::create_directories(workdir);
      cfg.netlist_path = workdir + "/" + circuit + ".bench";
      cfg.patterns_path = workdir + "/" + circuit + ".patterns";
      {
        std::ofstream os(cfg.netlist_path);
        if (!os) throw std::runtime_error("cannot write " + cfg.netlist_path);
        write_bench(os, netlist);
      }
      write_patterns_file(cfg.patterns_path, patterns);
    } else {
      if (netlist_path.empty() || patterns_path.empty())
        throw std::runtime_error("--netlist and --patterns go together");
      netlist = load_netlist(netlist_path);
      patterns = read_patterns_file(patterns_path);
      if (patterns.n_signals() != netlist.n_inputs())
        throw std::runtime_error(
            "pattern width does not match netlist inputs");
      cfg.netlist_path = netlist_path;
      cfg.patterns_path = patterns_path;
    }

    const PatternSet good = simulate(netlist, patterns);
    const std::vector<LoadgenCase> corpus =
        make_corpus(netlist, patterns, good, corpus_cfg);
    if (corpus.empty())
      throw std::runtime_error("corpus is empty (defect sampling failed "
                               "for every case; try a larger circuit)");
    std::cerr << "openmdd_loadgen: " << corpus.size() << " datalogs for "
              << netlist.name() << " (" << patterns.n_patterns()
              << " patterns, seed " << corpus_cfg.seed << ")\n";

    if (!emit_corpus.empty()) {
      std::filesystem::create_directories(emit_corpus);
      for (std::size_t i = 0; i < corpus.size(); ++i) {
        std::ostringstream name;
        name << emit_corpus << "/case_" << i << ".datalog";
        std::ofstream os(name.str());
        if (!os) throw std::runtime_error("cannot write " + name.str());
        os << corpus[i].datalog_text;
      }
      std::cerr << "openmdd_loadgen: wrote corpus to " << emit_corpus
                << "\n";
    }

    const std::string mode =
        coldstart ? "coldstart" : (!connect.empty() ? "tcp" : "inproc");
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    if (!connect.empty()) {
      const std::size_t colon = connect.rfind(':');
      if (colon == std::string::npos)
        throw std::runtime_error("--connect wants HOST:PORT");
      host = connect.substr(0, colon);
      port = static_cast<std::uint16_t>(
          parse_count(connect.substr(colon + 1), "--connect port"));
    }

    std::unique_ptr<server::DiagnosisService> service;
    if (mode == "inproc") {
      // Make sure closed-loop clients never trip backpressure: they issue
      // at most `concurrency` requests at a time.
      std::size_t max_conc = 0;
      for (const std::size_t c : concurrencies)
        max_conc = std::max(max_conc, c);
      service_opts.queue_depth =
          std::max(service_opts.queue_depth, 2 * max_conc);
      service = std::make_unique<server::DiagnosisService>(service_opts);
    }

    // Stats snapshot of the serving side, for memo hit-rate deltas (one
    // sample before and after each concurrency level). Coldstart has no
    // serving side; its samples stay zero and the columns print "-".
    const auto fetch_stats = [&]() -> server::Json {
      if (mode == "inproc") return service->stats_json();
      if (mode == "tcp") {
        server::TcpLineClient client(host, port);
        server::Json req;
        req.set("op", "stats");
        const server::Json r = server::Json::parse(
            client.roundtrip(req.dump()));
        if (const server::Json* stats = r.find("stats")) return *stats;
      }
      return server::Json();
    };

    const std::string run_mode = batch > 0 ? "batch" : mode;
    TextTable table({"mode", "conc", "reqs", "dlogs", "ok", "timeout",
                     "overld", "err", "wall_s", "req/s", "dlogs/s",
                     "sig_hit%", "comp_hit%", "p50_ms", "p95_ms", "p99_ms",
                     "max_ms"});
    StageStats stage_stats;
    OpBreakdown breakdown;
    bool any_error = false;
    const std::string op = batch > 0 ? "diagnose_batch" : "diagnose";
    for (const std::size_t conc : concurrencies) {
      const std::size_t n_datalogs = corpus.size() * repeat;
      const std::size_t reqs =
          batch > 0 ? (n_datalogs + batch - 1) / batch : n_datalogs;
      const auto make = [&](std::size_t i) {
        if (batch == 0) return make_request(cfg, corpus[i % corpus.size()], i);
        const std::size_t first = i * batch;
        return make_batch_request(cfg, corpus, first,
                                  std::min(batch, n_datalogs - first),
                                  service_opts.batch_threads, i);
      };
      const MemoSample before = memo_sample(fetch_stats());
      RunStats stats;
      if (mode == "coldstart") {
        stats = run_closed_loop(
            reqs, conc, make, [&](std::size_t, server::Json request) {
              const std::string status = execute_cold(cfg, request);
              server::Json response;
              response.set("status", status);
              breakdown.add(op, response);
              return status;
            });
      } else if (mode == "tcp") {
        std::vector<std::unique_ptr<server::TcpLineClient>> clients;
        for (std::size_t w = 0; w < conc; ++w)
          clients.push_back(
              std::make_unique<server::TcpLineClient>(host, port));
        // Warm the session once so every timed concurrency level measures
        // resident serving, not the first parse.
        clients[0]->roundtrip(make_request(cfg, corpus[0], 0).dump());
        stats = run_closed_loop(
            reqs, conc, make, [&](std::size_t w, server::Json request) {
              const server::Json response = server::Json::parse(
                  clients[w]->roundtrip(request.dump()));
              if (cfg.trace) stage_stats.add(response);
              breakdown.add(op, response);
              return response.get_string("status", "error");
            });
      } else {
        service->handle(make_request(cfg, corpus[0], 0));  // warm
        stats = run_closed_loop(
            reqs, conc, make, [&](std::size_t, server::Json request) {
              std::promise<std::string> done;
              auto got = done.get_future();
              service->submit(std::move(request), [&](server::Json r) {
                if (cfg.trace) stage_stats.add(r);
                breakdown.add(op, r);
                done.set_value(r.get_string("status", "error"));
              });
              return got.get();
            });
      }
      const MemoSample after = memo_sample(fetch_stats());
      any_error |= stats.n_error > 0;
      table.add_row(
          {run_mode, std::to_string(conc), std::to_string(reqs),
           std::to_string(n_datalogs), std::to_string(stats.n_ok),
           std::to_string(stats.n_timeout),
           std::to_string(stats.n_overloaded), std::to_string(stats.n_error),
           fmt(stats.wall_s, 3),
           fmt(stats.wall_s > 0 ? reqs / stats.wall_s : 0.0, 1),
           fmt(stats.wall_s > 0 ? n_datalogs / stats.wall_s : 0.0, 1),
           hit_rate(after.sig_hits - before.sig_hits,
                    after.sig_misses - before.sig_misses),
           hit_rate(after.comp_hits - before.comp_hits,
                    after.comp_misses - before.comp_misses),
           fmt(stats.latency.p50_ms, 2), fmt(stats.latency.p95_ms, 2),
           fmt(stats.latency.p99_ms, 2), fmt(stats.latency.max_ms, 2)});
    }
    if (csv)
      table.print_csv(std::cout);
    else
      table.print(std::cout);
    std::cout << "\n";
    breakdown.print(std::cout, csv);
    if (cfg.trace) {
      std::cout << "\n";
      stage_stats.print(std::cout, csv);
    }

    // Sharded serving: when --connect points at a router, its stats carry
    // a per-shard breakdown — print one row per worker so scaling runs
    // show where the sessions landed (and who respawned).
    if (mode == "tcp") {
      const server::Json final_stats = fetch_stats();
      const server::Json* shards = final_stats.find("shards");
      if (shards != nullptr && shards->is_array() &&
          !shards->as_array().empty()) {
        std::cout << "\n";
        TextTable shard_table({"shard", "state", "pid", "gen", "respawns",
                               "ok", "err", "cache_hit", "cache_miss",
                               "sig_hit%"});
        for (const server::Json& entry : shards->as_array()) {
          std::string ok = "-", err = "-", cache_hit = "-", cache_miss = "-",
                      sig = "-";
          if (const server::Json* worker = entry.find("stats")) {
            if (const server::Json* reqs = worker->find("requests")) {
              ok = fmt(reqs->get_number("ok"), 0);
              err = fmt(reqs->get_number("error"), 0);
            }
            if (const server::Json* cache = worker->find("cache")) {
              cache_hit = fmt(cache->get_number("hits"), 0);
              cache_miss = fmt(cache->get_number("misses"), 0);
            }
            const MemoSample sample = memo_sample(*worker);
            sig = hit_rate(sample.sig_hits, sample.sig_misses);
          }
          shard_table.add_row(
              {fmt(entry.get_number("shard"), 0), entry.get_string("state"),
               fmt(entry.get_number("pid"), 0),
               fmt(entry.get_number("generation"), 0),
               fmt(entry.get_number("respawns"), 0), ok, err, cache_hit,
               cache_miss, sig});
        }
        if (csv)
          shard_table.print_csv(std::cout);
        else
          shard_table.print(std::cout);
      }
    }

    if (send_shutdown && mode == "tcp") {
      server::TcpLineClient client(host, port);
      server::Json req;
      req.set("op", "shutdown");
      client.roundtrip(req.dump());
      std::cerr << "openmdd_loadgen: server shut down\n";
    }
    return any_error ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "openmdd_loadgen: " << e.what() << "\n";
    return 1;
  }
}
