// openmdd — command-line front-end.
//
//   openmdd stats    <netlist>
//   openmdd convert  <netlist> -o out.{bench,v}
//   openmdd atpg     <netlist> -o patterns.txt [--seed N] [--no-compact]
//   openmdd inject   <netlist> --patterns f --fault "sa0 n16" [--fault ...]
//                    [-o datalog.txt] [--max-failing N]
//   openmdd diagnose <netlist> --patterns f --datalog f
//                    [--method multiplet|slat|single|all] [--threads N]
//   openmdd diagnose <netlist> --patterns f --batch <dir|list-file>
//                    [--store-dir d] [--threads N] [--format text|json]
//
// --batch switches diagnose into volume mode: every *.datalog in the
// directory (or every path listed in the file, one per line) is
// diagnosed against ONE warmed session — shared baseline, dictionary
// store, and signature memos — and a cross-datalog recurrence summary
// (systematic vs. random, net hit counts) is appended. Per-datalog
// reports are byte-identical to running `diagnose --datalog` once per
// file.
//
// --threads N (or the MDD_THREADS environment variable; 0 = all cores)
// pre-fills the candidate solo-signature cache candidate-parallel before
// diagnosis; reports are byte-identical for any thread count.
//
// Netlists are read as ISCAS .bench (*.bench) or structural Verilog (*.v);
// file formats are documented in src/workload/textio.hpp.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include <filesystem>

#include "atpg/tpg.hpp"
#include "core/cancel.hpp"
#include "core/exec.hpp"
#include "core/version.hpp"
#include "diag/multiplet.hpp"
#include "diag/single_fault.hpp"
#include "diag/slat.hpp"
#include "fault/collapse.hpp"
#include "fsim/fsim.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/dot.hpp"
#include "netlist/verilog_parser.hpp"
#include "server/result_json.hpp"
#include "server/service.hpp"
#include "sim/kernel.hpp"
#include "store/reader.hpp"
#include "store/refresh.hpp"
#include "store/writer.hpp"
#include "workload/textio.hpp"

namespace {

using namespace mdd;

int usage() {
  std::cerr
      << "usage:\n"
         "  openmdd stats    <netlist>\n"
         "  openmdd convert  <netlist> -o <out.bench|out.v|out.dot>\n"
         "  openmdd atpg     <netlist> -o <patterns.txt> [--seed N]"
         " [--no-compact]\n"
         "  openmdd inject   <netlist> --patterns <f> --fault <spec>..."
         " [-o <datalog>] [--max-failing N]\n"
         "  openmdd diagnose <netlist> --patterns <f> --datalog <f>"
         " [--method multiplet|slat|single|all]\n"
         "                   [--threads N] [--format text|json]"
         " [--deadline-ms N]\n"
         "  openmdd diagnose <netlist> --patterns <f> --batch"
         " <dir|list-file> [--store-dir <d>]\n"
         "                   [--method M] [--threads N]"
         " [--format text|json]\n"
         "  openmdd dict build   <netlist> --patterns <f> --store-dir <dir>"
         " [--bridges N] [--bridge-seed N]\n"
         "                       [--no-bridges] [--no-wired] [--threads N]"
         " [--force] [--from-journal]\n"
         "  openmdd dict refresh <netlist> --patterns <f> --store-dir <dir>"
         " [--threads N]\n"
         "  openmdd dict inspect <store-file-or-dir>\n"
         "  openmdd dict verify  <store-file> [--netlist <f> --patterns <f>]"
         " [--sample N]\n"
         "  openmdd version [--store-dir <dir>]\n"
         "fault specs: 'sa0 NET' 'sa1 GATE.PIN' 'dom AGG VICTIM'"
         " 'wand A B' 'wor A B' 'str NET' 'stf NET'\n"
         "--kernel NAME (any command) selects the simulation kernel"
         " (available: "
      << kernel_names() << "; default: widest, or MDD_KERNEL)\n";
  return 2;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Netlist load_netlist(const std::string& path) {
  if (ends_with(path, ".bench")) return parse_bench_file(path).netlist;
  if (ends_with(path, ".v")) {
    static const CellLibrary lib;
    return parse_verilog_file(path, lib).netlist;
  }
  throw std::runtime_error("unknown netlist extension (want .bench or .v): " +
                           path);
}

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;  // --key value
  std::vector<std::string> flags;                            // --key

  bool has_flag(std::string_view f) const {
    for (const auto& x : flags)
      if (x == f) return true;
    return false;
  }
  std::string option(std::string_view key, std::string dflt = "") const {
    for (const auto& [k, v] : options)
      if (k == key) return v;
    return dflt;
  }
  std::vector<std::string> all_options(std::string_view key) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : options)
      if (k == key) out.push_back(v);
    return out;
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  static const char* kValueOptions[] = {
      "-o",          "--patterns", "--fault",   "--datalog",
      "--seed",      "--method",   "--max-failing", "--threads",
      "--format",    "--deadline-ms", "--kernel",  "--store-dir",
      "--bridges",   "--bridge-seed", "--sample",  "--netlist",
      "--batch"};
  static const char* kFlags[] = {"--no-compact", "--no-bridges",
                                 "--no-wired", "--force", "--from-journal"};
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    bool is_value_option = false;
    for (const char* vo : kValueOptions) is_value_option |= (a == vo);
    if (is_value_option) {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + a);
      args.options.emplace_back(a, argv[++i]);
    } else if (a.rfind("-", 0) == 0) {
      bool known = false;
      for (const char* f : kFlags) known |= (a == f);
      if (!known)
        throw std::runtime_error("unknown option '" + a +
                                 "' (see usage: run with no arguments)");
      args.flags.push_back(a);
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

/// Strict non-negative integer parse for option values; rejects trailing
/// junk, signs, and empty strings with the flag name in the message.
std::size_t parse_count(const std::string& value, std::string_view flag) {
  std::size_t pos = 0;
  unsigned long long n = 0;
  bool ok = !value.empty() && value[0] != '-' && value[0] != '+';
  if (ok) {
    try {
      n = std::stoull(value, &pos);
    } catch (const std::exception&) {
      ok = false;
    }
  }
  if (!ok || pos != value.size())
    throw std::runtime_error(std::string(flag) +
                             " wants a non-negative integer, got '" + value +
                             "'");
  return static_cast<std::size_t>(n);
}

int cmd_stats(const Args& args) {
  const Netlist nl = load_netlist(args.positional.at(0));
  const auto s = nl.stats();
  const CollapsedFaults cf(nl);
  std::cout << "netlist:    " << nl.name() << "\n"
            << "inputs:     " << s.n_inputs << "\n"
            << "outputs:    " << s.n_outputs << "\n"
            << "gates:      " << s.n_gates << "\n"
            << "depth:      " << s.depth << "\n"
            << "max fanin:  " << s.max_fanin << "\n"
            << "max fanout: " << s.max_fanout << "\n"
            << "stems:      " << s.n_fanout_stems << "\n"
            << "sa faults:  " << cf.universe().size() << " ("
            << cf.representatives().size() << " collapsed)\n"
            << "cells:      " << nl.cell_instances().size() << "\n";
  return 0;
}

int cmd_convert(const Args& args) {
  const Netlist nl = load_netlist(args.positional.at(0));
  const std::string out = args.option("-o");
  if (out.empty()) throw std::runtime_error("convert: missing -o");
  std::ofstream os(out);
  if (!os) throw std::runtime_error("cannot write " + out);
  if (ends_with(out, ".bench"))
    write_bench(os, nl);
  else if (ends_with(out, ".v"))
    write_verilog(os, nl);
  else if (ends_with(out, ".dot"))
    write_dot(os, nl);
  else
    throw std::runtime_error("unknown output extension: " + out);
  std::cout << "wrote " << out << "\n";
  return 0;
}

int cmd_atpg(const Args& args) {
  const Netlist nl = load_netlist(args.positional.at(0));
  const std::string out = args.option("-o");
  if (out.empty()) throw std::runtime_error("atpg: missing -o");
  TpgOptions opt;
  opt.seed = parse_count(args.option("--seed", "1"), "--seed");
  opt.compact = !args.has_flag("--no-compact");
  const TpgResult r = generate_tests(nl, opt);
  write_patterns_file(out, r.patterns);
  std::cout << "patterns:   " << r.patterns.n_patterns() << "\n"
            << "coverage:   " << r.coverage() * 100 << "%\n"
            << "effective:  " << r.effective_coverage() * 100 << "%\n"
            << "untestable: " << r.n_untestable << "\n"
            << "aborted:    " << r.n_aborted << "\n"
            << "wrote " << out << "\n";
  return 0;
}

int cmd_inject(const Args& args) {
  const Netlist nl = load_netlist(args.positional.at(0));
  const PatternSet patterns = read_patterns_file(args.option("--patterns"));
  if (patterns.n_signals() != nl.n_inputs())
    throw std::runtime_error("pattern width does not match netlist inputs");
  std::vector<Fault> defect;
  for (const std::string& spec : args.all_options("--fault"))
    defect.push_back(parse_fault_spec(spec, nl));
  if (defect.empty()) throw std::runtime_error("inject: no --fault given");

  DatalogOptions opt;
  const std::string cap = args.option("--max-failing");
  if (!cap.empty()) opt.max_failing_patterns = parse_count(cap, "--max-failing");

  const PatternSet good = simulate(nl, patterns);
  const Datalog log = datalog_from_defect(nl, defect, patterns, good, opt);
  std::cout << "injected " << defect.size() << " fault(s); "
            << log.observed.n_failing_patterns() << " failing patterns, "
            << log.observed.n_error_bits() << " failing bits\n";
  const std::string out = args.option("-o");
  if (out.empty()) {
    write_datalog(std::cout, log, nl);
  } else {
    write_datalog_file(out, log, nl);
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}

/// Volume mode: one warmed in-process service session diagnoses every
/// datalog in a directory (or list file), then prints the cross-datalog
/// recurrence summary. Reports per datalog match `--datalog` runs.
int cmd_diagnose_batch(const Args& args) {
  const std::string batch = args.option("--batch");
  const std::string format = args.option("--format", "text");
  if (format != "text" && format != "json")
    throw std::runtime_error("--format wants 'text' or 'json', got '" +
                             format + "'");

  server::ServiceOptions options;
  options.n_workers = 1;  // handle() runs on this thread; no queue traffic
  options.store_dir = args.option("--store-dir");
  const std::string threads = args.option("--threads");
  if (!threads.empty())
    options.batch_threads = parse_count(threads, "--threads");

  server::Json request;
  request.set("op", "diagnose_batch");
  request.set("netlist", args.positional.at(0));
  request.set("patterns", args.option("--patterns"));
  request.set("method", args.option("--method", "multiplet"));
  if (std::filesystem::is_directory(batch)) {
    request.set("datalog_dir", batch);
  } else {
    std::ifstream in(batch);
    if (!in) throw std::runtime_error("cannot read batch list " + batch);
    server::JsonArray files;
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
        line.pop_back();
      if (!line.empty()) files.emplace_back(line);
    }
    request.set("datalog_files", server::Json(std::move(files)));
  }

  server::DiagnosisService service(options);
  const server::Json response = service.handle(request);
  if (response.get_string("status") == "error")
    throw std::runtime_error(response.get_string("error"));

  if (format == "json") {
    std::cout << response.dump() << "\n";
    return 0;
  }

  const server::Json* volume = response.find("volume");
  std::cout << "datalogs:   "
            << static_cast<std::size_t>(response.get_number("n_datalogs"))
            << " (" << static_cast<std::size_t>(response.get_number("n_errors"))
            << " errors, "
            << static_cast<std::size_t>(response.get_number("threads"))
            << " threads)\n";
  if (const server::Json* results = response.find("results")) {
    for (const server::Json& item : results->as_array()) {
      std::cout << "  [" << static_cast<std::size_t>(item.get_number("index"))
                << "] " << item.get_string("status");
      const std::string file = item.get_string("datalog_file");
      if (!file.empty()) std::cout << "  " << file;
      if (const server::Json* reports = item.find("reports")) {
        if (!reports->as_array().empty()) {
          const server::Json& first = reports->as_array().front();
          if (const server::Json* suspects = first.find("suspects"))
            if (!suspects->as_array().empty())
              std::cout << "  top: "
                        << suspects->as_array().front().get_string("fault");
        }
      }
      const std::string err = item.get_string("error");
      if (!err.empty()) std::cout << "  " << err;
      std::cout << "\n";
    }
  }
  if (volume != nullptr) {
    std::cout << "volume:     "
              << static_cast<std::size_t>(
                     volume->get_number("n_systematic_datalogs"))
              << " systematic / "
              << static_cast<std::size_t>(
                     volume->get_number("n_random_datalogs"))
              << " random datalogs, "
              << static_cast<std::size_t>(
                     volume->get_number("n_distinct_candidates"))
              << " distinct candidates\n";
    if (const server::Json* recs = volume->find("recurrences")) {
      for (const server::Json& r : recs->as_array()) {
        std::cout << "  " << r.get_string("fault") << "  "
                  << static_cast<std::size_t>(r.get_number("n_datalogs"))
                  << " datalogs ("
                  << static_cast<std::size_t>(r.get_number("n_rank1"))
                  << " rank-1)"
                  << (r.get_bool("systematic") ? "  systematic" : "") << "\n";
      }
    }
  }
  if (const server::Json* amortization = response.find("amortization")) {
    std::cout << "amortized:  "
              << static_cast<std::size_t>(
                     amortization->get_number("solo_computes"))
              << " solo simulations for "
              << static_cast<std::size_t>(
                     amortization->get_number("candidates"))
              << " candidate slots\n";
  }
  return 0;
}

int cmd_diagnose(const Args& args) {
  if (!args.option("--batch").empty()) return cmd_diagnose_batch(args);
  const Netlist nl = load_netlist(args.positional.at(0));
  const PatternSet patterns = read_patterns_file(args.option("--patterns"));
  const Datalog log = read_datalog_file(args.option("--datalog"), nl);
  const std::string method = args.option("--method", "multiplet");
  const std::string format = args.option("--format", "text");
  if (format != "text" && format != "json")
    throw std::runtime_error("--format wants 'text' or 'json', got '" +
                             format + "'");
  ExecPolicy exec = ExecPolicy::from_env();
  const std::string threads = args.option("--threads");
  if (!threads.empty())
    exec = ExecPolicy::parallel(parse_count(threads, "--threads"));
  std::optional<CancelToken> token;
  const CancelToken* cancel = nullptr;
  const std::string deadline = args.option("--deadline-ms");
  if (!deadline.empty()) {
    const std::size_t ms = parse_count(deadline, "--deadline-ms");
    if (ms > 0) {
      token.emplace(CancelToken::Clock::now() +
                    std::chrono::milliseconds(ms));
      cancel = &*token;
    }
  }

  DiagnosisContext ctx(nl, patterns, log);
  if (!exec.is_serial()) ctx.warm_solo_signatures(exec, cancel);
  std::vector<DiagnosisReport> reports;
  if (method == "multiplet" || method == "all") {
    MultipletOptions opt;
    opt.cancel = cancel;
    reports.push_back(diagnose_multiplet(ctx, opt));
  }
  if (method == "slat" || method == "all") {
    SlatOptions opt;
    opt.cancel = cancel;
    reports.push_back(diagnose_slat(ctx, opt));
  }
  if (method == "single" || method == "all") {
    SingleFaultOptions opt;
    opt.cancel = cancel;
    reports.push_back(diagnose_single_fault(ctx, opt));
  }
  if (reports.empty()) throw std::runtime_error("unknown method " + method);

  if (format == "json") {
    // Same serializer as the serving path (src/server/result_json.cpp),
    // so a served response's "reports" diffs clean against this output.
    bool timed_out = false;
    for (const DiagnosisReport& r : reports) timed_out |= r.timed_out;
    server::Json out;
    out.set("status", timed_out ? "timeout" : "ok");
    out.set("method", method);
    if (timed_out) out.set("partial", true);
    out.set("reports", server::reports_to_json(reports, nl));
    std::cout << out.dump() << "\n";
    return 0;
  }

  for (const DiagnosisReport& r : reports) {
    std::cout << "== " << r.method << " (" << r.suspects.size()
              << " suspects" << (r.explains_all ? ", exact" : "")
              << (r.timed_out ? ", partial (deadline)" : "") << ", "
              << r.cpu_seconds * 1000 << " ms)\n";
    for (const ScoredCandidate& sc : r.suspects) {
      std::cout << "  " << to_string(sc.fault, nl) << "  [TFSF="
                << sc.counts.tfsf << " TFSP=" << sc.counts.tfsp
                << " TPSF=" << sc.counts.tpsf << "]\n";
      for (const Fault& alt : sc.alternates)
        std::cout << "    = " << to_string(alt, nl) << "\n";
    }
  }
  return 0;
}

/// Prints a fold result (`dict refresh`, `dict build --from-journal`).
void print_refresh_stats(const store::RefreshStats& stats) {
  std::cout << "offered:    " << stats.n_offered << " journaled fault(s)\n"
            << "added:      " << stats.n_new << " ("
            << stats.n_existing << " carried over, " << stats.n_invalid
            << " invalid)\n";
  if (stats.rebuilt) std::cout << "rebuilt:    store was absent or invalid\n";
  if (stats.wrote)
    std::cout << "wrote:      " << stats.build.n_faults << " faults, "
              << stats.build.file_bytes << " bytes ("
              << stats.build.simulate_seconds * 1000 << " ms simulate)\n";
  else
    std::cout << "wrote:      nothing (store already covers the journal)\n";
}

/// `dict refresh`: fold the store-miss journal the serving layer wrote
/// back into the dictionary, growing the universe the next cold start
/// serves from. Safe to run while a daemon serves the old file — the
/// tmp+rename swap never disturbs a live mapping.
int cmd_dict_refresh(const Args& args) {
  const Netlist nl = load_netlist(args.positional.at(1));
  const PatternSet patterns = read_patterns_file(args.option("--patterns"));
  const std::string dir = args.option("--store-dir");
  if (dir.empty())
    throw std::runtime_error("dict refresh: missing --store-dir");
  ExecPolicy exec = ExecPolicy::from_env();
  const std::string threads = args.option("--threads");
  if (!threads.empty())
    exec = ExecPolicy::parallel(parse_count(threads, "--threads"));
  print_refresh_stats(store::refresh_store(nl, patterns, dir, exec));
  return 0;
}

int cmd_dict_build(const Args& args) {
  const Netlist nl = load_netlist(args.positional.at(1));
  const PatternSet patterns = read_patterns_file(args.option("--patterns"));
  const std::string dir = args.option("--store-dir");
  if (dir.empty()) throw std::runtime_error("dict build: missing --store-dir");

  store::StoreUniverseConfig config;
  config.include_bridges = !args.has_flag("--no-bridges");
  config.include_wired = !args.has_flag("--no-wired");
  const std::string bridges = args.option("--bridges");
  if (!bridges.empty())
    config.bridge_pairs = parse_count(bridges, "--bridges");
  const std::string seed = args.option("--bridge-seed");
  if (!seed.empty()) config.bridge_seed = parse_count(seed, "--bridge-seed");

  ExecPolicy exec = ExecPolicy::from_env();
  const std::string threads = args.option("--threads");
  if (!threads.empty())
    exec = ExecPolicy::parallel(parse_count(threads, "--threads"));

  std::filesystem::create_directories(dir);
  const store::DictWriter writer(nl, patterns);
  const std::string path = store::store_path_for(dir, nl, patterns);
  const bool skip_build =
      std::filesystem::exists(path) && !args.has_flag("--force");
  if (skip_build) {
    std::cout << "store exists (same content hashes), skipping: " << path
              << "\n(use --force to rebuild)\n";
  } else {
    const std::vector<Fault> universe =
        store::default_store_universe(nl, config);
    const store::BuildStats stats = writer.write(path, universe, exec);
    std::cout << "faults:     " << stats.n_faults << "\n"
              << "error bits: " << stats.n_error_bits << "\n"
              << "file size:  " << stats.file_bytes << " bytes ("
              << stats.payload_bytes << " postings)\n"
              << "simulate:   " << stats.simulate_seconds * 1000 << " ms\n"
              << "encode:     " << stats.encode_seconds * 1000 << " ms\n"
              << "wrote " << path << "\n";
  }
  // --from-journal folds the serving layer's store-miss sidecar on top of
  // the default universe, so one build covers both the generated and the
  // workload-learned candidate sets.
  if (args.has_flag("--from-journal"))
    print_refresh_stats(store::refresh_store(nl, patterns, dir, exec));
  return 0;
}

void print_store_summary(const std::string& path) {
  const auto dict = store::DictReader::open(path);
  const store::StoreHeader& h = dict->header();
  std::cout << path << "\n"
            << "  format:      v" << h.format_version << "\n"
            << "  netlist:     " << std::hex << h.netlist_hash << std::dec
            << " (content hash)\n"
            << "  patterns:    " << std::hex << h.patterns_hash << std::dec
            << " (content hash)\n"
            << "  shape:       " << h.n_patterns << " patterns x "
            << h.n_outputs << " outputs\n"
            << "  faults:      " << dict->n_entries() << "\n"
            << "  error bits:  " << dict->total_error_bits() << "\n"
            << "  bytes:       " << dict->bytes_mapped() << "\n";
}

int cmd_dict_inspect(const Args& args) {
  const std::string target = args.positional.at(1);
  if (!std::filesystem::is_directory(target)) {
    print_store_summary(target);
    return 0;
  }
  std::size_t n_files = 0, n_bad = 0;
  for (const auto& e : std::filesystem::directory_iterator(target)) {
    if (!e.is_regular_file() ||
        e.path().extension() != store::kStoreExtension)
      continue;
    ++n_files;
    try {
      print_store_summary(e.path().string());
    } catch (const std::exception& ex) {
      ++n_bad;
      std::cout << e.path().string() << "\n  INVALID: " << ex.what() << "\n";
    }
  }
  std::cout << n_files << " store file(s)";
  if (n_bad > 0) std::cout << ", " << n_bad << " invalid";
  std::cout << "\n";
  return n_bad == 0 ? 0 : 1;
}

int cmd_dict_verify(const Args& args) {
  const std::string path = args.positional.at(1);
  // Structural pass: open() has already proven sizes + content hash; a
  // full decode additionally walks every posting list bounds-checked.
  const auto dict = store::DictReader::open(path);
  const std::size_t bits = dict->verify_all();
  std::cout << "structure:  ok (" << dict->n_entries() << " faults, "
            << bits << " error bits decoded)\n";

  const std::string netlist_path = args.option("--netlist");
  const std::string patterns_path = args.option("--patterns");
  if (netlist_path.empty() != patterns_path.empty())
    throw std::runtime_error(
        "dict verify: --netlist and --patterns go together");
  if (netlist_path.empty()) return 0;

  // Semantic pass: prove the store belongs to these inputs, then
  // re-simulate a sample of faults and demand byte-identical signatures.
  const Netlist nl = load_netlist(netlist_path);
  const PatternSet patterns = read_patterns_file(patterns_path);
  dict->validate_for(nl, patterns);
  std::size_t sample = 32;
  const std::string sample_opt = args.option("--sample");
  if (!sample_opt.empty()) sample = parse_count(sample_opt, "--sample");
  const std::size_t n = dict->n_entries();
  if (sample == 0 || sample > n) sample = n;

  FaultSimulator fsim(nl, patterns);
  for (std::size_t k = 0; k < sample; ++k) {
    const std::size_t i = k * n / sample;  // evenly spaced, includes 0
    const Fault f = dict->fault_at(i);
    if (dict->decode(i) != fsim.signature(f))
      throw std::runtime_error("stored signature of fault record " +
                               std::to_string(i) +
                               " differs from fresh simulation");
  }
  std::cout << "simulation: ok (" << sample << " of " << n
            << " signatures re-simulated, byte-identical)\n";
  return 0;
}

int cmd_dict(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error(
        "dict wants a subcommand: build | refresh | inspect | verify");
  const std::string& sub = args.positional.front();
  if (sub == "build") return cmd_dict_build(args);
  if (sub == "refresh") return cmd_dict_refresh(args);
  if (sub == "inspect") return cmd_dict_inspect(args);
  if (sub == "verify") return cmd_dict_verify(args);
  throw std::runtime_error("unknown dict subcommand '" + sub +
                           "' (want build | refresh | inspect | verify)");
}

/// `openmdd version [--store-dir DIR]`: build/version facts plus, with a
/// store directory, a one-line scan of the persistent dictionaries in it.
int cmd_version(int argc, char** argv) {
  std::cout << "openmdd " << kVersion << "\n"
            << "fsim.kernel: " << mdd::current_kernel().name
            << " (available: " << mdd::kernel_names() << ")\n"
            << "store: format v" << store::kFormatVersion << " (*"
            << store::kStoreExtension << ")\n";
  std::string dir;
  for (int i = 2; i < argc; ++i)
    if (std::string(argv[i]) == "--store-dir" && i + 1 < argc)
      dir = argv[i + 1];
  if (dir.empty()) return 0;
  std::size_t n_files = 0, n_bad = 0, entries = 0, bytes = 0;
  std::error_code ec;
  for (const auto& e : std::filesystem::directory_iterator(dir, ec)) {
    if (!e.is_regular_file() ||
        e.path().extension() != store::kStoreExtension)
      continue;
    ++n_files;
    try {
      const auto dict = store::DictReader::open(e.path().string());
      entries += dict->n_entries();
      bytes += dict->bytes_mapped();
    } catch (const std::exception&) {
      ++n_bad;
    }
  }
  if (ec) {
    std::cout << "store dir: " << dir << " (unreadable: " << ec.message()
              << ")\n";
    return 0;
  }
  std::cout << "store dir: " << dir << " (" << n_files << " stores, "
            << entries << " entries, " << bytes << " bytes";
  if (n_bad > 0) std::cout << ", " << n_bad << " invalid";
  std::cout << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::string(argv[1]) == "version" ||
                    std::string(argv[1]) == "--version"))
    return cmd_version(argc, argv);
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    const Args args = parse_args(argc, argv, 2);
    const std::string kernel = args.option("--kernel");
    if (!kernel.empty() && !mdd::set_current_kernel(kernel))
      throw std::runtime_error("unknown simulation kernel '" + kernel +
                               "' (available: " + mdd::kernel_names() + ")");
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "atpg") return cmd_atpg(args);
    if (cmd == "inject") return cmd_inject(args);
    if (cmd == "diagnose") return cmd_diagnose(args);
    if (cmd == "dict") return cmd_dict(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "openmdd " << cmd << ": " << e.what() << "\n";
    return 1;
  }
}
