// openmdd_serve — long-lived diagnosis daemon.
//
//   openmdd_serve [--stdio] [--port N] [--workers N] [--queue N]
//                 [--cache-mb N] [--memo-mb N] [--composite-mb N]
//                 [--exec-threads N] [--default-deadline-ms N]
//                 [--metrics-port N] [--slow-ms N] [--kernel NAME]
//                 [--store-dir DIR] [--store-refresh N] [--batch-threads N]
//                 [--shards N] [--shard-socket-dir DIR]
//                 [--shard-heartbeat-ms N]
//
// Speaks line-delimited JSON (one request object per line, one response
// per line; protocol in src/server/service.hpp and DESIGN.md §7) either
// on stdin/stdout (--stdio, the default) or on a loopback-only TCP port
// (--port N; N=0 binds an ephemeral port and prints it on stderr).
// Circuits are parsed and good-simulated once per (netlist, patterns)
// pair and kept in an LRU session cache, so steady-state requests skip
// straight to diagnosis. --metrics-port serves the Prometheus text
// exposition of the obs registry on a second loopback socket; --slow-ms
// writes one structured JSON line to stderr per slow request.
//
// --shards N (with --port) turns this process into a router: it forks N
// copies of itself as shard workers (each a full single-process daemon on
// a private unix socket, sharing --store-dir), consistent-hashes requests
// onto them by (netlist, patterns), streams their responses back
// verbatim, and supervises them — crash/hang detection, respawn, typed
// shard_failed errors for requests caught on a dead worker (DESIGN.md
// §15). `--uds PATH` is the internal worker entry point the router
// spawns; it is accepted from the command line for debugging but not
// part of the supported interface.
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/exec.hpp"
#include "core/version.hpp"
#include "server/metrics_http.hpp"
#include "server/router.hpp"
#include "sim/kernel.hpp"
#include "server/serve.hpp"
#include "server/service.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: openmdd_serve [--stdio | --port N] [--workers N]"
         " [--queue N]\n"
         "                     [--cache-mb N] [--exec-threads N]"
         " [--default-deadline-ms N]\n"
         "  --stdio                serve JSONL on stdin/stdout (default)\n"
         "  --port N               serve JSONL on 127.0.0.1:N (0 ="
         " ephemeral)\n"
         "  --workers N            request worker threads (default 2)\n"
         "  --queue N              job-queue depth before 'overloaded'"
         " (default 64)\n"
         "  --cache-mb N           session-cache budget in MiB"
         " (default 256)\n"
         "  --memo-mb N            per-session signature-memo budget in"
         " MiB (default 256)\n"
         "  --composite-mb N       per-session composite-memo budget in"
         " MiB (default 64)\n"
         "  --exec-threads N       intra-request threads for the signature"
         " warm (default 0 = serial)\n"
         "  --default-deadline-ms N  deadline for requests without one"
         " (default 0 = none)\n"
         "  --metrics-port N       Prometheus text exposition on"
         " 127.0.0.1:N (0 = ephemeral)\n"
         "  --slow-ms N            log slow requests (>= N ms end-to-end)"
         " as JSON on stderr\n"
         "  --store-dir DIR        serve candidate signatures from"
         " prebuilt dictionary stores\n"
         "                         (openmdd dict build) found in DIR\n"
         "  --store-refresh N      fold store-missed faults back into the"
         " dictionary once a\n"
         "                         session's journal holds N of them"
         " (default 0 = off;\n"
         "                         needs --store-dir)\n"
         "  --batch-threads N      datalog-level threads inside one"
         " diagnose_batch request\n"
         "                         (default 0 = --workers; request"
         " 'threads' overrides)\n"
         "  --shards N             fork N shard worker processes and route"
         " requests onto them\n"
         "                         by (netlist, patterns); needs --port\n"
         "  --shard-socket-dir DIR directory for the shard unix sockets"
         " (default: a fresh\n"
         "                         mkdtemp under /tmp)\n"
         "  --shard-heartbeat-ms N worker liveness probe period"
         " (default 5000; 0 = off)\n"
         "  --kernel NAME          simulation kernel (available: "
      << mdd::kernel_names()
      << "; default: widest, or MDD_KERNEL)\n";
  return 2;
}

std::size_t parse_count(const std::string& value, const std::string& flag) {
  std::size_t pos = 0;
  long long n = 0;
  try {
    n = std::stoll(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || n < 0)
    throw std::runtime_error(flag + " wants a non-negative integer, got '" +
                             value + "'");
  return static_cast<std::size_t>(n);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdd;
  server::ServiceOptions options;
  bool use_tcp = false;
  std::uint16_t port = 0;
  std::size_t exec_threads = 0;
  std::optional<std::uint16_t> metrics_port;
  std::size_t n_shards = 0;
  std::string uds_path;
  std::string shard_socket_dir;
  std::size_t shard_heartbeat_ms = 5000;
  // The service flags, re-collected verbatim: in router mode these are
  // replayed onto every forked shard worker's command line.
  std::vector<std::string> worker_flags;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc)
          throw std::runtime_error("missing value for " + a);
        return argv[++i];
      };
      const auto service_flag = [&](const std::string& v) {
        worker_flags.push_back(a);
        worker_flags.push_back(v);
        return v;
      };
      if (a == "--stdio") {
        use_tcp = false;
      } else if (a == "--port") {
        use_tcp = true;
        const std::size_t p = parse_count(value(), a);
        if (p > 65535) throw std::runtime_error("--port out of range");
        port = static_cast<std::uint16_t>(p);
      } else if (a == "--workers") {
        options.n_workers = parse_count(service_flag(value()), a);
        if (options.n_workers == 0)
          throw std::runtime_error("--workers must be at least 1");
      } else if (a == "--queue") {
        options.queue_depth = parse_count(service_flag(value()), a);
        if (options.queue_depth == 0)
          throw std::runtime_error("--queue must be at least 1");
      } else if (a == "--cache-mb") {
        options.cache_bytes = parse_count(service_flag(value()), a) << 20;
      } else if (a == "--memo-mb") {
        options.memo_bytes = parse_count(service_flag(value()), a) << 20;
      } else if (a == "--composite-mb") {
        options.composite_bytes = parse_count(service_flag(value()), a) << 20;
      } else if (a == "--exec-threads") {
        exec_threads = parse_count(service_flag(value()), a);
      } else if (a == "--default-deadline-ms") {
        options.default_deadline =
            std::chrono::milliseconds(parse_count(service_flag(value()), a));
      } else if (a == "--metrics-port") {
        const std::size_t p = parse_count(value(), a);
        if (p > 65535) throw std::runtime_error("--metrics-port out of range");
        metrics_port = static_cast<std::uint16_t>(p);
      } else if (a == "--slow-ms") {
        options.slow_ms =
            static_cast<double>(parse_count(service_flag(value()), a));
      } else if (a == "--store-dir") {
        options.store_dir = service_flag(value());
      } else if (a == "--store-refresh") {
        options.store_refresh_threshold = parse_count(service_flag(value()), a);
      } else if (a == "--batch-threads") {
        options.batch_threads = parse_count(service_flag(value()), a);
      } else if (a == "--kernel") {
        options.kernel = service_flag(value());
      } else if (a == "--shards") {
        n_shards = parse_count(value(), a);
      } else if (a == "--shard-socket-dir") {
        shard_socket_dir = value();
      } else if (a == "--shard-heartbeat-ms") {
        shard_heartbeat_ms = parse_count(value(), a);
      } else if (a == "--uds") {
        uds_path = value();
      } else if (a == "--help" || a == "-h") {
        return usage();
      } else {
        std::cerr << "openmdd_serve: unknown option '" << a << "'\n";
        return usage();
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "openmdd_serve: " << e.what() << "\n";
    return 2;
  }
  if (exec_threads > 0) options.exec = ExecPolicy::parallel(exec_threads);
  if (options.store_refresh_threshold > 0 && options.store_dir.empty()) {
    std::cerr << "openmdd_serve: --store-refresh needs --store-dir\n";
    return 2;
  }

  // Router mode: no service in this process — fork the shard workers
  // (each re-executes this binary with --uds) and route between them.
  if (n_shards > 0 && uds_path.empty()) {
    if (!use_tcp) {
      std::cerr << "openmdd_serve: --shards needs --port (the router is the"
                   " TCP front-end)\n";
      return 2;
    }
    if (shard_socket_dir.empty()) {
      char tmpl[] = "/tmp/openmdd-shards-XXXXXX";
      if (::mkdtemp(tmpl) == nullptr) {
        std::cerr << "openmdd_serve: mkdtemp: cannot create socket dir\n";
        return 1;
      }
      shard_socket_dir = tmpl;
    } else if (::mkdir(shard_socket_dir.c_str(), 0700) != 0 &&
               errno != EEXIST) {
      std::cerr << "openmdd_serve: cannot create socket dir "
                << shard_socket_dir << ": " << std::strerror(errno) << "\n";
      return 1;
    }
    server::RouterOptions router_options;
    router_options.n_shards = n_shards;
    router_options.socket_dir = shard_socket_dir;
    router_options.heartbeat_ms = static_cast<int>(shard_heartbeat_ms);
    router_options.worker_argv.push_back("/proc/self/exe");
    router_options.worker_argv.insert(router_options.worker_argv.end(),
                                      worker_flags.begin(),
                                      worker_flags.end());
    std::cerr << "openmdd_serve " << kVersion << ": router, " << n_shards
              << " shards, sockets in " << shard_socket_dir << "\n";
    server::ShardRouter router(std::move(router_options), std::cerr);
    try {
      router.start();
    } catch (const std::exception& e) {
      std::cerr << "openmdd_serve: " << e.what() << "\n";
      return 1;
    }
    std::unique_ptr<server::MetricsHttpServer> metrics;
    if (metrics_port) {
      try {
        metrics = std::make_unique<server::MetricsHttpServer>(
            *metrics_port, std::cerr, nullptr,
            [&router] { return router.prometheus_text(); });
      } catch (const std::exception& e) {
        std::cerr << "openmdd_serve: " << e.what() << "\n";
        return 1;
      }
    }
    return router.serve_tcp(port);
  }

  std::unique_ptr<server::DiagnosisService> service;
  try {
    service = std::make_unique<server::DiagnosisService>(options);
  } catch (const std::invalid_argument& e) {
    std::cerr << "openmdd_serve: " << e.what() << "\n";
    return 2;
  }
  std::cerr << "openmdd_serve " << kVersion << ": " << options.n_workers
            << " workers, queue " << options.queue_depth << ", cache "
            << (options.cache_bytes >> 20) << " MiB, kernel "
            << current_kernel().name;
  if (!options.store_dir.empty()) {
    std::cerr << ", store " << options.store_dir;
    if (options.store_refresh_threshold > 0)
      std::cerr << " (refresh at " << options.store_refresh_threshold
                << " journaled faults)";
  }
  std::cerr << "\n";
  std::unique_ptr<server::MetricsHttpServer> metrics;
  if (metrics_port) {
    try {
      metrics =
          std::make_unique<server::MetricsHttpServer>(*metrics_port, std::cerr);
    } catch (const std::exception& e) {
      std::cerr << "openmdd_serve: " << e.what() << "\n";
      return 1;
    }
  }
  if (!uds_path.empty()) return server::serve_uds(*service, uds_path, std::cerr);
  if (use_tcp) return server::serve_tcp(*service, port, std::cerr);
  return server::serve_stdio(*service, std::cin, std::cout);
}
