// openmdd quickstart: diagnose a single stuck-at defect on c17.
//
// Flow: build the circuit -> generate a production test set -> inject a
// defect and capture the tester datalog -> run the no-assumptions multiplet
// diagnoser -> print the suspects.
//
// Pass --threads N (or set MDD_THREADS; 0 = all cores) to pre-fill the
// candidate solo-signature cache in parallel — the diagnosis output is
// byte-identical for any thread count.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/exec.hpp"
#include "diag/multiplet.hpp"
#include "netlist/generator.hpp"
#include "workload/circuits.hpp"

int main(int argc, char** argv) {
  using namespace mdd;

  ExecPolicy exec = ExecPolicy::from_env();
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--threads") == 0)
      exec = ExecPolicy::parallel(
          static_cast<std::size_t>(std::atol(argv[i + 1])));

  // 1. Circuit + test set (ATPG: random bootstrap + PODEM top-up).
  BenchCircuit bc = load_bench_circuit("c17");
  const Netlist& nl = bc.netlist;
  std::cout << "circuit: " << nl.name() << "  gates=" << nl.n_gates()
            << " PIs=" << nl.n_inputs() << " POs=" << nl.n_outputs()
            << "  patterns=" << bc.patterns.n_patterns()
            << "  stuck-at coverage=" << bc.tpg.coverage() * 100 << "%\n";

  // 2. The "defective device": net 16 stuck-at-0 (unknown to diagnosis).
  const Fault defect = Fault::stem_sa(nl.find_net("16"), false);
  std::cout << "injected defect: " << to_string(defect, nl) << "\n";

  FaultSimulator fsim(nl, bc.patterns);
  const Datalog datalog = datalog_from_defect(
      nl, {&defect, 1}, bc.patterns, fsim.good_response());
  std::cout << "datalog: " << datalog.observed.n_failing_patterns()
            << " failing patterns, " << datalog.observed.n_error_bits()
            << " failing bits\n\n";

  // 3. Diagnose (warming the per-candidate signature cache with the
  // requested thread count first; serial by default).
  DiagnosisContext ctx(nl, bc.patterns, datalog);
  if (!exec.is_serial()) {
    std::cout << "warming solo-signature cache on " << exec.n_threads
              << " threads\n";
    ctx.warm_solo_signatures(exec);
  }
  const DiagnosisReport report = diagnose_multiplet(ctx);

  std::cout << "diagnosis (" << report.method << "): "
            << report.suspects.size() << " suspect(s)"
            << (report.explains_all ? ", explains the datalog exactly" : "")
            << "\n";
  for (const ScoredCandidate& sc : report.suspects) {
    std::cout << "  suspect: " << to_string(sc.fault, nl)
              << "  (TFSF=" << sc.counts.tfsf << " TFSP=" << sc.counts.tfsp
              << " TPSF=" << sc.counts.tpsf << ")\n";
    for (const Fault& alt : sc.alternates)
      std::cout << "    equivalent: " << to_string(alt, nl) << "\n";
  }
  return 0;
}
