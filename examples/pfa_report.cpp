// openmdd example: producing a PFA work order.
//
// The end product of logic diagnosis is a physical-failure-analysis plan:
// which sites to probe, in which order, with what fault hypothesis, and a
// picture of where they sit in the logic. This example runs a diagnosis on
// a two-defect device and emits (a) a ranked site report with
// indistinguishability groups and per-site evidence, and (b) a Graphviz
// DOT file of the neighbourhood with the suspect nets highlighted.
#include <fstream>
#include <iostream>
#include <random>

#include "netlist/dot.hpp"
#include "workload/campaign.hpp"
#include "workload/circuits.hpp"

int main() {
  using namespace mdd;

  BenchCircuit bc = load_bench_circuit("g200");
  const Netlist& nl = bc.netlist;
  FaultSimulator fsim(nl, bc.patterns);

  // The defective device (unknown to the flow below).
  DefectSampleConfig dcfg;
  dcfg.multiplicity = 2;
  dcfg.interaction = InteractionLevel::SameCone;
  std::mt19937_64 rng(12);
  const auto defect = sample_defect(nl, fsim, dcfg, rng);
  if (!defect) return 1;

  const Datalog log = datalog_from_defect(nl, *defect, bc.patterns,
                                          fsim.good_response());
  DiagnosisContext ctx(nl, bc.patterns, log);
  const DiagnosisReport report = diagnose_multiplet(ctx);

  // (a) The work order.
  std::cout << "PFA work order — device " << nl.name() << "\n"
            << "datalog: " << log.observed.n_failing_patterns()
            << " failing patterns / " << log.observed.n_error_bits()
            << " failing bits; diagnosis "
            << (report.explains_all ? "reproduces the datalog exactly"
                                    : "is a best-effort explanation")
            << "\n\n";
  std::size_t rank = 1;
  for (const ScoredCandidate& sc : report.suspects) {
    std::cout << "site " << rank++ << ": " << to_string(sc.fault, nl) << "\n"
              << "  evidence: explains " << sc.counts.tfsf
              << " failing bits, contradicts " << sc.counts.tpsf
              << " passing bits\n";
    if (auto cell = nl.owning_cell(sc.fault.net)) {
      const CellInstance& inst = nl.cell_instances()[*cell];
      std::cout << "  inside cell " << inst.cell_name << " instance '"
                << inst.instance_name << "'\n";
    }
    for (const Fault& alt : sc.alternates)
      std::cout << "  probe alternative: " << to_string(alt, nl) << "\n";
  }

  // (b) The schematic snippet.
  DotOptions dot;
  for (const ScoredCandidate& sc : report.suspects) {
    dot.highlight.push_back(sc.fault.net);
    if (sc.fault.is_bridge()) dot.highlight.push_back(sc.fault.bridge_net);
  }
  const char* path = "pfa_suspects.dot";
  std::ofstream os(path);
  write_dot(os, nl, dot);
  std::cout << "\nwrote " << path
            << " (render with: dot -Tsvg pfa_suspects.dot -o suspects.svg)\n";

  // Reveal the truth for the reader of this example.
  const CollapsedFaults collapsed(nl);
  const TruthEvaluation ev =
      evaluate_against_truth(report, *defect, collapsed);
  std::cout << "\n[ground truth: ";
  for (const Fault& f : *defect) std::cout << to_string(f, nl) << "  ";
  std::cout << "-> " << ev.n_hit << "/" << ev.n_injected << " named]\n";
  return 0;
}
