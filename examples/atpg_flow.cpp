// openmdd example: full test-generation flow on a user netlist.
//
// Parses a small ALU-slice netlist from ISCAS .bench text, runs fault
// collapsing and the production ATPG flow (random bootstrap + PODEM +
// compaction), reports coverage, and writes the circuit back out as
// structural Verilog — exercising both parsers, collapsing, PODEM and the
// fault simulator through the public API only.
#include <iostream>

#include "atpg/tpg.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/verilog_parser.hpp"

namespace {

constexpr const char* kBenchText = R"(
# 2-bit ALU slice with carry chain and zero flag
INPUT(a0)
INPUT(a1)
INPUT(b0)
INPUT(b1)
INPUT(cin)
INPUT(sel)
OUTPUT(y0)
OUTPUT(y1)
OUTPUT(cout)
OUTPUT(zero)
nsel  = NOT(sel)
x0    = XOR(a0, b0)
s0    = XOR(x0, cin)
c0a   = AND(a0, b0)
c0b   = AND(x0, cin)
c0    = OR(c0a, c0b)
x1    = XOR(a1, b1)
s1    = XOR(x1, c0)
c1a   = AND(a1, b1)
c1b   = AND(x1, c0)
cout  = OR(c1a, c1b)
and0  = AND(a0, b0)
and1  = AND(a1, b1)
y0s   = AND(s0, nsel)
y0a   = AND(and0, sel)
y0    = OR(y0s, y0a)
y1s   = AND(s1, nsel)
y1a   = AND(and1, sel)
y1    = OR(y1s, y1a)
ny0   = NOT(y0)
ny1   = NOT(y1)
zero  = AND(ny0, ny1)
)";

}  // namespace

int main() {
  using namespace mdd;

  const BenchParseResult parsed = parse_bench_string(kBenchText, "alu2");
  const Netlist& nl = parsed.netlist;
  const auto stats = nl.stats();
  std::cout << "parsed '" << nl.name() << "': " << stats.n_gates
            << " gates, depth " << stats.depth << ", "
            << stats.n_fanout_stems << " fanout stems\n";

  const CollapsedFaults collapsed(nl);
  std::cout << "stuck-at universe: " << collapsed.universe().size()
            << " faults -> " << collapsed.representatives().size()
            << " collapsed classes (ratio "
            << collapsed.collapse_ratio() << ")\n";

  TpgOptions options;
  options.random_batch = 64;
  options.max_random_rounds = 3;
  const TpgResult tpg = generate_tests(nl, options);
  std::cout << "ATPG: " << tpg.patterns.n_patterns() << " patterns, coverage "
            << tpg.coverage() * 100 << "% (effective "
            << tpg.effective_coverage() * 100 << "%), " << tpg.n_untestable
            << " untestable, " << tpg.n_aborted << " aborted\n\n";

  std::cout << "structural Verilog:\n" << write_verilog_string(nl);
  return 0;
}
