// openmdd example: two interacting defects.
//
// Demonstrates the point of the reproduced method. Two defects whose
// observation cones overlap produce failing patterns where both are
// sensitized at once — error effects mask or reinforce, so many failing
// patterns match no single-fault simulation exactly. The SLAT baseline
// discards those patterns; the no-assumptions multiplet diagnoser scores
// candidate pairs with true composite simulation and recovers both sites.
#include <iostream>
#include <random>

#include "workload/campaign.hpp"
#include "workload/circuits.hpp"

int main() {
  using namespace mdd;

  BenchCircuit bc = load_bench_circuit("g200");
  const Netlist& nl = bc.netlist;
  FaultSimulator fsim(nl, bc.patterns);
  const CollapsedFaults collapsed(nl);

  // Sample an interacting double stuck-at defect deterministically.
  DefectSampleConfig dcfg;
  dcfg.multiplicity = 2;
  dcfg.bridge_fraction = 0.0;
  dcfg.interaction = InteractionLevel::SameCone;
  std::mt19937_64 rng(7);
  const auto defect = sample_defect(nl, fsim, dcfg, rng);
  if (!defect) {
    std::cerr << "could not sample an interacting defect\n";
    return 1;
  }
  std::cout << "injected defects:\n";
  for (const Fault& f : *defect) std::cout << "  " << to_string(f, nl) << "\n";

  const Datalog log = datalog_from_defect(nl, *defect, bc.patterns,
                                          fsim.good_response());
  std::cout << "datalog: " << log.observed.n_failing_patterns()
            << " failing patterns, " << log.observed.n_error_bits()
            << " failing bits\n\n";

  DiagnosisContext ctx(nl, bc.patterns, log);

  auto show = [&](const DiagnosisReport& r) {
    const TruthEvaluation ev = evaluate_against_truth(r, *defect, collapsed);
    std::cout << r.method << ": " << r.suspects.size() << " suspects, hit "
              << ev.n_hit << "/" << ev.n_injected
              << (r.explains_all ? ", exact" : "");
    if (r.method == "slat")
      std::cout << "  [SLAT patterns: " << r.n_slat_patterns
                << ", discarded non-SLAT: " << r.n_nonslat_patterns << "]";
    std::cout << "\n";
    for (const ScoredCandidate& sc : r.suspects)
      std::cout << "  " << to_string(sc.fault, nl) << "\n";
  };

  DiagnosisReport single = diagnose_single_fault(ctx);
  single.suspects.resize(std::min<std::size_t>(single.suspects.size(), 2));
  show(single);
  show(diagnose_slat(ctx));
  show(diagnose_multiplet(ctx));
  return 0;
}
