// openmdd example: hunting a bridging defect.
//
// A dominant bridge is a conditional fault — the victim only takes a wrong
// value when the aggressor carries the opposite of the victim's good value
// — so the candidate pool must include explicit bridge candidates, and the
// diagnoser must pick the right victim/aggressor pair among the stuck-at
// look-alikes. This example injects a random dominant bridge and shows the
// full report including indistinguishable alternates.
#include <iostream>
#include <random>

#include "workload/campaign.hpp"
#include "workload/circuits.hpp"

int main() {
  using namespace mdd;

  BenchCircuit bc = load_bench_circuit("g200");
  const Netlist& nl = bc.netlist;
  FaultSimulator fsim(nl, bc.patterns);
  const CollapsedFaults collapsed(nl);

  DefectSampleConfig dcfg;
  dcfg.multiplicity = 1;
  dcfg.bridge_fraction = 1.0;  // bridge only
  std::mt19937_64 rng(21);
  const auto defect = sample_defect(nl, fsim, dcfg, rng);
  if (!defect) {
    std::cerr << "no detectable bridge found\n";
    return 1;
  }
  std::cout << "injected: " << to_string(defect->front(), nl) << "\n";

  const Datalog log = datalog_from_defect(nl, *defect, bc.patterns,
                                          fsim.good_response());
  std::cout << "datalog: " << log.observed.n_failing_patterns()
            << " failing patterns\n\n";

  DiagnosisContext ctx(nl, bc.patterns, log);
  const DiagnosisReport report = diagnose_multiplet(ctx);
  const TruthEvaluation ev = evaluate_against_truth(report, *defect, collapsed);

  std::cout << "multiplet diagnosis: " << report.suspects.size()
            << " suspect(s), " << (ev.all_hit ? "defect named" : "MISSED")
            << (report.explains_all ? ", datalog explained exactly" : "")
            << "\n";
  for (const ScoredCandidate& sc : report.suspects) {
    std::cout << "  suspect: " << to_string(sc.fault, nl) << "\n";
    for (const Fault& alt : sc.alternates)
      std::cout << "    indistinguishable: " << to_string(alt, nl) << "\n";
  }
  return 0;
}
