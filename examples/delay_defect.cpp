// openmdd example: diagnosing a delay defect with two-pattern tests.
//
// A resistive open slows a net rather than fixing its value: single-frame
// stuck-at patterns pass, but launch/capture pairs that toggle the net
// catch the late transition. This example generates a transition test set,
// injects a slow-to-rise defect, and diagnoses in pair mode — candidate
// extraction proposes slow-to-rise/fall sites and every score comes from
// two-frame composite simulation.
#include <iostream>
#include <random>

#include "atpg/tpg.hpp"
#include "diag/metrics.hpp"
#include "diag/multiplet.hpp"
#include "netlist/generator.hpp"

int main() {
  using namespace mdd;

  const Netlist nl = make_named_circuit("g200");

  // 1. Two-pattern (launch/capture) transition test set.
  TdfTpgOptions tpg;
  tpg.seed = 42;
  const TdfTpgResult tests = generate_tdf_tests(nl, tpg);
  std::cout << "transition test set: " << tests.capture.n_patterns()
            << " pairs, coverage " << tests.coverage() * 100 << "%\n";

  // 2. The defective device: a slow-to-rise net.
  PairFaultSimulator fsim(nl, tests.launch, tests.capture);
  std::mt19937_64 rng(4);
  Fault defect{};
  for (;;) {
    const NetId net = static_cast<NetId>(rng() % nl.n_nets());
    defect = Fault::slow_to_rise(net);
    if (fsim.detects(defect)) break;
  }
  std::cout << "injected defect: " << to_string(defect, nl) << "\n";

  // Sanity: the same defect is invisible to the static stuck-at patterns.
  FaultyMachine machine(nl);
  machine.set_faults({&defect, 1});
  const bool static_escape =
      machine.simulate(tests.capture) == simulate(nl, tests.capture);
  std::cout << "escapes single-frame testing: "
            << (static_escape ? "yes" : "no") << "\n";

  // 3. Datalog + pair-mode diagnosis.
  const Datalog log = datalog_from_defect_pair(
      nl, {&defect, 1}, tests.launch, tests.capture, fsim.good_response());
  std::cout << "datalog: " << log.observed.n_failing_patterns()
            << " failing pairs\n\n";

  DiagnosisContext ctx(nl, tests.launch, tests.capture, log);
  const DiagnosisReport report = diagnose_multiplet(ctx);
  const CollapsedFaults collapsed(nl);
  const TruthEvaluation ev =
      evaluate_against_truth(report, {&defect, 1}, collapsed);

  std::cout << "diagnosis: " << report.suspects.size() << " suspect(s), "
            << (ev.all_hit ? "defect named" : "missed")
            << (report.explains_all ? ", datalog explained exactly" : "")
            << "\n";
  for (const ScoredCandidate& sc : report.suspects) {
    std::cout << "  suspect: " << to_string(sc.fault, nl) << "\n";
    for (const Fault& alt : sc.alternates)
      std::cout << "    indistinguishable: " << to_string(alt, nl) << "\n";
  }
  return 0;
}
