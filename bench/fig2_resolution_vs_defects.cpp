// Figure 2 — resolution (reported suspects per injected defect) vs number
// of simultaneous defects.
//
// Ideal is 1.0. The single-fault baseline reports a fixed top-k list, so
// its resolution balloons as k grows relative to the defect count; the
// multiplet method commits only the members its composite simulation
// justifies, keeping resolution near 1.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 2",
                      "resolution vs defect multiplicity (g200)");

  const BenchCircuit bc = load_bench_circuit("g200");
  const std::size_t cases = bench::scaled_cases(args, 40);

  TextTable table({"k", "cases", "single", "slat", "multiplet"});
  for (std::size_t k = 1; k <= 6; ++k) {
    CampaignConfig cfg;
    cfg.n_cases = cases;
    cfg.defect.multiplicity = k;
    cfg.defect.bridge_fraction = 0.25;
    cfg.seed = 0xF161 + k;  // same workloads as Figure 1
    const CampaignResult r = bench::run_cell(bc, cfg);
    table.add_row({std::to_string(k), std::to_string(r.n_cases),
                   fmt(r.single.avg_resolution(), 2),
                   fmt(r.slat.avg_resolution(), 2),
                   fmt(r.multiplet.avg_resolution(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
