// Figure 3 — diagnosis CPU time vs circuit size (k = 3).
//
// Per-case CPU of each diagnoser across the circuit-size ladder. The
// multiplet method's cost is dominated by candidate solo signatures plus
// rounds × shortlist composite re-simulations, all bit-parallel, so it
// stays interactive through the 5k-gate substitute.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 3", "diagnosis CPU vs circuit size (k=3)");

  std::vector<std::string> names = {"c17", "add8", "g200", "g1k", "g5k"};
  if (args.fast) names.pop_back();
  const std::size_t cases = bench::scaled_cases(args, 12);

  TextTable table({"circuit", "gates", "patterns", "cases", "single[ms]",
                   "slat[ms]", "multiplet[ms]"});
  for (const std::string& name : names) {
    const BenchCircuit bc = load_bench_circuit(name);
    CampaignConfig cfg;
    cfg.n_cases = cases;
    cfg.defect.multiplicity = 3;
    cfg.defect.bridge_fraction = 0.25;
    cfg.seed = 0xF163;
    const CampaignResult r = bench::run_cell(bc, cfg);
    table.add_row({name, std::to_string(bc.netlist.n_gates()),
                   std::to_string(bc.patterns.n_patterns()),
                   std::to_string(r.n_cases), fmt(r.single.avg_cpu_ms(), 1),
                   fmt(r.slat.avg_cpu_ms(), 1),
                   fmt(r.multiplet.avg_cpu_ms(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
