// Ablation 1 — candidate-extraction strategy.
//
// The diagnosis core scores only the candidates the extractor proposes, so
// extraction is the recall bottleneck. Compares, at k = 2 on g200:
//   cpt+bridges  — default: per-failure critical path tracing plus
//                  behaviour-consistent bridge partners
//   cpt-only     — no bridge candidates (bridging defects can then only be
//                  approximated by stuck-at suspects)
//   cone         — CPT plus full back-cone stem faults (recall-maximal,
//                  pool-bloating)
// Reports pool size, whether the injected sites are in the pool (recall),
// multiplet hit rate and per-case CPU.
#include <chrono>

#include "bench/common.hpp"
#include "diag/metrics.hpp"
#include "diag/multiplet.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation 1", "candidate extraction strategy (k=2)");

  const BenchCircuit bc = load_bench_circuit("g200");
  const Netlist& nl = bc.netlist;
  FaultSimulator fsim(nl, bc.patterns);
  const CollapsedFaults collapsed(nl);
  const std::size_t cases = bench::scaled_cases(args, 30);

  struct Variant {
    std::string name;
    CandidateOptions options;
  };
  std::vector<Variant> variants(3);
  variants[0].name = "cpt+bridges";
  variants[1].name = "cpt-only";
  variants[1].options.include_bridges = false;
  variants[2].name = "cone";
  variants[2].options.back_cone_threshold = SIZE_MAX;  // always add cone

  TextTable table({"variant", "cases", "avg pool", "recall", "hit", "exact",
                   "cpu[ms]"});
  for (const Variant& v : variants) {
    std::mt19937_64 rng(0xAB11);
    double pool_sum = 0, recall_sum = 0, hit_sum = 0, cpu_sum = 0;
    std::size_t n = 0, exact = 0;
    for (std::size_t c = 0; c < cases; ++c) {
      DefectSampleConfig dc;
      dc.multiplicity = 2;
      dc.bridge_fraction = 0.25;
      const auto defect = sample_defect(nl, fsim, dc, rng);
      if (!defect) continue;
      const Datalog log = datalog_from_defect(nl, *defect, bc.patterns,
                                              fsim.good_response());
      if (!log.has_failures()) continue;
      const auto t0 = std::chrono::steady_clock::now();
      DiagnosisContext ctx(nl, bc.patterns, log, v.options);
      const DiagnosisReport r = diagnose_multiplet(ctx);
      cpu_sum += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
      ++n;
      pool_sum += static_cast<double>(ctx.n_candidates());
      std::size_t in_pool = 0;
      for (const Fault& f : *defect) {
        for (std::size_t i = 0; i < ctx.n_candidates(); ++i) {
          if (same_site(f, ctx.candidate(i), collapsed)) {
            ++in_pool;
            break;
          }
        }
      }
      recall_sum += static_cast<double>(in_pool) /
                    static_cast<double>(defect->size());
      const TruthEvaluation ev =
          evaluate_against_truth(r, *defect, collapsed);
      hit_sum += ev.hit_rate;
      exact += r.explains_all;
    }
    table.add_row({v.name, std::to_string(n), fmt(pool_sum / n, 0),
                   fmt_pct(recall_sum / n), fmt_pct(hit_sum / n),
                   fmt_pct(static_cast<double>(exact) / n),
                   fmt(1000.0 * cpu_sum / n, 1)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
