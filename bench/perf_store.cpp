// Perf E — persistent dictionary-store micro-benchmarks (google-benchmark).
//
// Quantifies the cold-start story on g1k: what a store costs to build
// (one-time, offline), what it costs to open (mmap + validation, paid once
// per daemon start), and how store-served candidate warming compares with
// simulating every candidate from scratch — the work a restarted daemon
// would otherwise redo per session.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "diag/multiplet.hpp"
#include "server/signature_memo.hpp"
#include "sim/kernel.hpp"
#include "store/reader.hpp"
#include "store/refresh.hpp"
#include "store/writer.hpp"
#include "workload/campaign.hpp"
#include "workload/circuits.hpp"

namespace {

using namespace mdd;

struct Fixture {
  BenchCircuit bc = load_bench_circuit("g1k");
  FaultSimulator fsim{bc.netlist, bc.patterns};
  std::vector<Fault> universe;
  std::string store_file;
  Datalog log;

  Fixture() {
    universe = store::default_store_universe(bc.netlist);
    store_file = "/tmp/perf_store_g1k" + std::string(store::kStoreExtension);
    const store::DictWriter writer(bc.netlist, bc.patterns);
    writer.write(store_file, universe);

    std::mt19937_64 rng(0xD1A6);
    DefectSampleConfig cfg;
    cfg.multiplicity = 3;
    cfg.bridge_fraction = 0.25;
    const auto defect = *sample_defect(bc.netlist, fsim, cfg, rng);
    log = datalog_from_defect(bc.netlist, defect, bc.patterns,
                              fsim.good_response());
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

// One-time build cost: simulate the whole universe and serialize. This is
// the offline price of every later cold start it amortizes.
void BM_StoreBuild(benchmark::State& state) {
  Fixture& f = fixture();
  const std::string path = f.store_file + ".rebuild";
  const store::DictWriter writer(f.bc.netlist, f.bc.patterns);
  for (auto _ : state) {
    const store::BuildStats stats = writer.write(path, f.universe);
    benchmark::DoNotOptimize(stats.file_bytes);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_StoreBuild)->Unit(benchmark::kMillisecond);

// Per-restart cost: open = mmap + header/index/content-hash validation.
void BM_StoreOpen(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    const auto dict = store::DictReader::open(f.store_file);
    benchmark::DoNotOptimize(dict->n_entries());
  }
}
BENCHMARK(BM_StoreOpen)->Unit(benchmark::kMillisecond);

// Full decode sweep: reconstruct every stored ErrorSignature from the
// mapping — the upper bound on store-served signature work per session.
void BM_StoreDecodeAll(benchmark::State& state) {
  Fixture& f = fixture();
  const auto dict = store::DictReader::open(f.store_file);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict->verify_all());
  }
}
BENCHMARK(BM_StoreDecodeAll)->Unit(benchmark::kMillisecond);

// The cold start being replaced: simulate every candidate of one
// diagnosis case, serially, like a storeless daemon's first request.
void BM_ColdWarmSimulated(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    state.PauseTiming();
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, f.log);
    state.ResumeTiming();
    ctx.warm_solo_signatures(ExecPolicy::serial());
    benchmark::DoNotOptimize(ctx.solo_compute_count());
  }
}
BENCHMARK(BM_ColdWarmSimulated)->Unit(benchmark::kMillisecond);

// The store-served cold start: covered candidates decode from the mmap;
// only extractor-invented candidates outside the universe still simulate.
void BM_ColdWarmStoreServed(benchmark::State& state) {
  Fixture& f = fixture();
  const auto dict = store::DictReader::open(f.store_file);
  for (auto _ : state) {
    state.PauseTiming();
    server::SignatureMemo memo;
    memo.set_store(dict);
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, f.log);
    ctx.attach_solo_store(&memo);
    state.ResumeTiming();
    const std::size_t warmed = ctx.warm_solo_from_store();
    ctx.warm_solo_signatures(ExecPolicy::serial());
    benchmark::DoNotOptimize(warmed + ctx.solo_compute_count());
  }
}
BENCHMARK(BM_ColdWarmStoreServed)->Unit(benchmark::kMillisecond);

// The maintenance-thread fold: carry every existing record byte-for-byte
// and simulate+append a handful of workload-learned bridges — the price
// of one background refresh cycle (state.range(0) journaled faults).
void BM_StoreRefreshFold(benchmark::State& state) {
  Fixture& f = fixture();
  const std::string dir = "/tmp/perf_store_refresh";
  std::filesystem::create_directories(dir);
  const std::string path =
      store::store_path_for(dir, f.bc.netlist, f.bc.patterns);
  std::vector<Fault> learned;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i)
    learned.push_back(Fault::bridge_dom(
        static_cast<NetId>(f.bc.netlist.n_nets() / 2 + i),
        static_cast<NetId>(f.bc.netlist.n_nets() / 4 + i)));
  const store::DictWriter writer(f.bc.netlist, f.bc.patterns);
  for (auto _ : state) {
    state.PauseTiming();
    writer.write(path, f.universe);  // reset: fold mutates the store
    state.ResumeTiming();
    const store::RefreshStats stats =
        store::fold_into_store(f.bc.netlist, f.bc.patterns, dir, learned);
    benchmark::DoNotOptimize(stats.n_new);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StoreRefreshFold)->Arg(16)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("fsim.kernel",
                              std::string(mdd::current_kernel().name));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
