// Perf A — simulation-kernel micro-benchmarks (google-benchmark).
//
// Measures the bit-parallel good machine, the composite faulty machine,
// signature extraction and critical path tracing: the kernels whose
// throughput bounds every diagnosis experiment.
//
// The kernel-sweep benchmarks below are registered once per available
// simulation kernel (scalar / avx2 / avx512 as CPUID allows), so one run
// produces the words/s comparison table in EXPERIMENTS.md directly. All
// setup — circuit construction, pattern generation, simulator/baseline
// construction — happens before the timed loop; the loop body is pure
// kernel work. Each sweep reports two rate counters:
//   patterns/s  — full-circuit pattern evaluations per second
//   words/s     — gate-word evaluations per second (n_gates x pattern
//                 words per sweep), the kernel-throughput figure of merit
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "fsim/cpt.hpp"
#include "fsim/fsim.hpp"
#include "netlist/generator.hpp"
#include "sim/event_sim.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace mdd;

const Netlist& circuit(const std::string& name) {
  static std::map<std::string, Netlist> cache;
  auto it = cache.find(name);
  if (it == cache.end())
    it = cache.emplace(name, make_named_circuit(name)).first;
  return it->second;
}

void set_sweep_counters(benchmark::State& state, const Netlist& nl,
                        std::size_t n_patterns, std::size_t n_blocks) {
  const double sweeps = static_cast<double>(state.iterations());
  state.counters["patterns/s"] = benchmark::Counter(
      sweeps * static_cast<double>(n_patterns), benchmark::Counter::kIsRate);
  state.counters["words/s"] = benchmark::Counter(
      sweeps * static_cast<double>(nl.n_gates()) *
          static_cast<double>(n_blocks),
      benchmark::Counter::kIsRate);
}

// ---- per-kernel sweeps (registered in main for each available kernel) ----

void BM_GoodMachineSweep(benchmark::State& state, const std::string& nl_name,
                         const SimKernel* kernel) {
  const Netlist& nl = circuit(nl_name);
  const PatternSet stimuli = PatternSet::random(512, nl.n_inputs(), 1);
  BlockSim sim(nl, *kernel);
  for (auto _ : state) {
    for (std::size_t b = 0; b < stimuli.n_blocks();)
      b += sim.run_wide(stimuli, b);
    benchmark::DoNotOptimize(sim.value(nl.outputs()[0]));
  }
  set_sweep_counters(state, nl, stimuli.n_patterns(), stimuli.n_blocks());
}

void BM_FaultyMachineSweep(benchmark::State& state, const SimKernel* kernel) {
  const Netlist& nl = circuit("g1k");
  const PatternSet stimuli = PatternSet::random(512, nl.n_inputs(), 1);
  FaultyMachine fm(nl, *kernel);
  const std::vector<Fault> faults{
      Fault::stem_sa(nl.n_nets() / 2, true),
      Fault::bridge_dom(nl.n_nets() / 3, nl.n_nets() / 2 + 7)};
  fm.set_faults(faults);
  for (auto _ : state) {
    for (std::size_t b = 0; b < stimuli.n_blocks();)
      b += fm.run_wide(stimuli, b);
    benchmark::DoNotOptimize(fm.value(nl.outputs()[0]));
  }
  set_sweep_counters(state, nl, stimuli.n_patterns(), stimuli.n_blocks());
}

void BM_SignatureExtraction(benchmark::State& state, std::size_t n_patterns,
                            const SimKernel* kernel) {
  const Netlist& nl = circuit("g1k");
  const PatternSet stimuli = PatternSet::random(n_patterns, nl.n_inputs(), 1);
  FaultSimulator fsim(nl, stimuli, *kernel);  // good response precomputed here
  const Fault f = Fault::stem_sa(nl.n_nets() / 2, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.signature(f));
  }
  set_sweep_counters(state, nl, stimuli.n_patterns(), stimuli.n_blocks());
}

void register_kernel_sweeps() {
  for (const SimKernel* k : available_kernels()) {
    const std::string suffix = std::string("/") + k->name;
    for (const std::string nl_name : {"g1k", "g5k"})
      benchmark::RegisterBenchmark(
          ("BM_GoodMachineSweep/" + nl_name + suffix).c_str(),
          BM_GoodMachineSweep, nl_name, k);
    benchmark::RegisterBenchmark(("BM_FaultyMachineSweep/g1k" + suffix).c_str(),
                                 BM_FaultyMachineSweep, k);
    for (const std::size_t n_patterns : {128, 512})
      benchmark::RegisterBenchmark(
          ("BM_SignatureExtraction/" + std::to_string(n_patterns) + suffix)
              .c_str(),
          BM_SignatureExtraction, n_patterns, k);
  }
}

// ---- thread-axis batches (process-default kernel; MDD_KERNEL overrides) ----

// Threads axis: fault-parallel signature batch on the large generated
// circuit — the hot path of every diagnosis campaign. Arg = thread count;
// output is byte-identical across the axis (tests/test_parallel_equiv.cpp),
// so the BENCH json trajectory records pure speedup.
void BM_SignatureBatchThreads(benchmark::State& state) {
  const Netlist& nl = circuit("g5k");
  const PatternSet stimuli = PatternSet::random(256, nl.n_inputs(), 3);
  FaultSimulator fsim(nl, stimuli);
  const std::vector<Fault> universe = all_stuck_at_faults(nl);
  std::vector<Fault> faults;
  for (std::size_t i = 0; i < universe.size() && faults.size() < 256;
       i += universe.size() / 256 + 1)
    faults.push_back(universe[i]);
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const ExecPolicy policy =
      threads <= 1 ? ExecPolicy::serial() : ExecPolicy::parallel(threads);
  for (auto _ : state) {
    auto sigs = fsim.signatures(faults, policy);
    benchmark::DoNotOptimize(sigs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
}
BENCHMARK(BM_SignatureBatchThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Threads axis for batch detection (early-exit workload, less uniform per
// fault than full signatures).
void BM_DetectedBatchThreads(benchmark::State& state) {
  const Netlist& nl = circuit("g1k");
  const PatternSet stimuli = PatternSet::random(256, nl.n_inputs(), 5);
  FaultSimulator fsim(nl, stimuli);
  const std::vector<Fault> faults = all_stuck_at_faults(nl);
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const ExecPolicy policy =
      threads <= 1 ? ExecPolicy::serial() : ExecPolicy::parallel(threads);
  for (auto _ : state) {
    auto det = fsim.detected(faults, policy);
    benchmark::DoNotOptimize(det);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
}
BENCHMARK(BM_DetectedBatchThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---- event-driven single-pattern paths (kernel-independent) ----

void BM_CriticalPathTrace(benchmark::State& state) {
  const Netlist& nl = circuit("g1k");
  const PatternSet stimuli = PatternSet::random(8, nl.n_inputs(), 1);
  EventSim sim(nl);
  sim.apply(stimuli, 0);
  CriticalPathTracer cpt(nl);
  std::uint32_t po = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpt.critical_nets(sim, po));
    po = (po + 1) % static_cast<std::uint32_t>(nl.n_outputs());
  }
}
BENCHMARK(BM_CriticalPathTrace);

void BM_EventFlip(benchmark::State& state) {
  const Netlist& nl = circuit("g1k");
  const PatternSet stimuli = PatternSet::random(8, nl.n_inputs(), 1);
  EventSim sim(nl);
  sim.apply(stimuli, 0);
  NetId n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.flip_observed_outputs(n));
    n = (n + 37) % static_cast<NetId>(nl.n_nets());
  }
}
BENCHMARK(BM_EventFlip);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("fsim.kernel",
                              std::string(mdd::current_kernel().name));
  benchmark::AddCustomContext("fsim.kernels_available", mdd::kernel_names());
  register_kernel_sweeps();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
