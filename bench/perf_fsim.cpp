// Perf A — simulation-kernel micro-benchmarks (google-benchmark).
//
// Measures the bit-parallel good machine, the composite faulty machine,
// signature extraction and critical path tracing: the kernels whose
// throughput bounds every diagnosis experiment.
#include <benchmark/benchmark.h>

#include "fsim/cpt.hpp"
#include "fsim/fsim.hpp"
#include "netlist/generator.hpp"
#include "sim/event_sim.hpp"

namespace {

using namespace mdd;

const Netlist& circuit(const std::string& name) {
  static std::map<std::string, Netlist> cache;
  auto it = cache.find(name);
  if (it == cache.end())
    it = cache.emplace(name, make_named_circuit(name)).first;
  return it->second;
}

void BM_GoodMachineBlock(benchmark::State& state) {
  const Netlist& nl = circuit(state.range(0) == 0 ? "g1k" : "g5k");
  const PatternSet stimuli = PatternSet::random(64, nl.n_inputs(), 1);
  BlockSim sim(nl);
  for (auto _ : state) {
    sim.run(stimuli, 0);
    benchmark::DoNotOptimize(sim.value(nl.outputs()[0]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.n_gates()) * 64);
}
BENCHMARK(BM_GoodMachineBlock)->Arg(0)->Arg(1);

void BM_FaultyMachineBlock(benchmark::State& state) {
  const Netlist& nl = circuit("g1k");
  const PatternSet stimuli = PatternSet::random(64, nl.n_inputs(), 1);
  FaultyMachine fm(nl);
  const std::vector<Fault> faults{
      Fault::stem_sa(nl.n_nets() / 2, true),
      Fault::bridge_dom(nl.n_nets() / 3, nl.n_nets() / 2 + 7)};
  fm.set_faults(faults);
  for (auto _ : state) {
    fm.run(stimuli, 0);
    benchmark::DoNotOptimize(fm.value(nl.outputs()[0]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.n_gates()) * 64);
}
BENCHMARK(BM_FaultyMachineBlock);

void BM_SignatureExtraction(benchmark::State& state) {
  const Netlist& nl = circuit("g1k");
  const PatternSet stimuli =
      PatternSet::random(static_cast<std::size_t>(state.range(0)),
                         nl.n_inputs(), 1);
  FaultSimulator fsim(nl, stimuli);
  const Fault f = Fault::stem_sa(nl.n_nets() / 2, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.signature(f));
  }
}
BENCHMARK(BM_SignatureExtraction)->Arg(128)->Arg(512);

// Threads axis: fault-parallel signature batch on the large generated
// circuit — the hot path of every diagnosis campaign. Arg = thread count;
// output is byte-identical across the axis (tests/test_parallel_equiv.cpp),
// so the BENCH json trajectory records pure speedup.
void BM_SignatureBatchThreads(benchmark::State& state) {
  const Netlist& nl = circuit("g5k");
  const PatternSet stimuli = PatternSet::random(256, nl.n_inputs(), 3);
  FaultSimulator fsim(nl, stimuli);
  const std::vector<Fault> universe = all_stuck_at_faults(nl);
  std::vector<Fault> faults;
  for (std::size_t i = 0; i < universe.size() && faults.size() < 256;
       i += universe.size() / 256 + 1)
    faults.push_back(universe[i]);
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const ExecPolicy policy =
      threads <= 1 ? ExecPolicy::serial() : ExecPolicy::parallel(threads);
  for (auto _ : state) {
    auto sigs = fsim.signatures(faults, policy);
    benchmark::DoNotOptimize(sigs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
}
BENCHMARK(BM_SignatureBatchThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Threads axis for batch detection (early-exit workload, less uniform per
// fault than full signatures).
void BM_DetectedBatchThreads(benchmark::State& state) {
  const Netlist& nl = circuit("g1k");
  const PatternSet stimuli = PatternSet::random(256, nl.n_inputs(), 5);
  FaultSimulator fsim(nl, stimuli);
  const std::vector<Fault> faults = all_stuck_at_faults(nl);
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const ExecPolicy policy =
      threads <= 1 ? ExecPolicy::serial() : ExecPolicy::parallel(threads);
  for (auto _ : state) {
    auto det = fsim.detected(faults, policy);
    benchmark::DoNotOptimize(det);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
}
BENCHMARK(BM_DetectedBatchThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_CriticalPathTrace(benchmark::State& state) {
  const Netlist& nl = circuit("g1k");
  const PatternSet stimuli = PatternSet::random(8, nl.n_inputs(), 1);
  EventSim sim(nl);
  sim.apply(stimuli, 0);
  CriticalPathTracer cpt(nl);
  std::uint32_t po = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpt.critical_nets(sim, po));
    po = (po + 1) % static_cast<std::uint32_t>(nl.n_outputs());
  }
}
BENCHMARK(BM_CriticalPathTrace);

void BM_EventFlip(benchmark::State& state) {
  const Netlist& nl = circuit("g1k");
  const PatternSet stimuli = PatternSet::random(8, nl.n_inputs(), 1);
  EventSim sim(nl);
  sim.apply(stimuli, 0);
  NetId n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.flip_observed_outputs(n));
    n = (n + 37) % static_cast<NetId>(nl.n_nets());
  }
}
BENCHMARK(BM_EventFlip);

}  // namespace

BENCHMARK_MAIN();
