// Table 1 — benchmark circuit characteristics and production test sets.
//
// Columns mirror the standard DAC-era benchmark table: circuit size,
// structure, collapsed stuck-at universe, pattern count and coverage.
#include "bench/common.hpp"
#include "fault/collapse.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Table 1", "circuit characteristics & test sets");

  std::vector<std::string> names = standard_circuit_names();
  if (args.fast) names.resize(5);

  TextTable table({"circuit", "PIs", "POs", "gates", "depth", "stems",
                   "faults", "collapsed", "patterns", "coverage",
                   "eff.cov"});
  for (const std::string& name : names) {
    const BenchCircuit bc = load_bench_circuit(name);
    const auto stats = bc.netlist.stats();
    const CollapsedFaults cf(bc.netlist);
    table.add_row({name, std::to_string(stats.n_inputs),
                   std::to_string(stats.n_outputs),
                   std::to_string(stats.n_gates),
                   std::to_string(stats.depth),
                   std::to_string(stats.n_fanout_stems),
                   std::to_string(cf.universe().size()),
                   std::to_string(cf.representatives().size()),
                   std::to_string(bc.patterns.n_patterns()),
                   fmt_pct(bc.tpg.coverage()),
                   fmt_pct(bc.tpg.effective_coverage())});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
