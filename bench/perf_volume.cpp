// Perf F — volume-diagnosis streaming throughput (google-benchmark).
//
// Measures the tentpole claim of the batch pipeline on g1k: a stream of
// tester datalogs (a few distinct defects, each recurring several times
// — the volume-diagnosis shape) diagnosed three ways:
//
//   IndependentSingles   one cold DiagnosisContext per datalog: what N
//                        unrelated `openmdd diagnose` invocations pay
//                        after circuit load (no shared memo state).
//   ResidentSingles      N sequential `op=diagnose` requests against one
//                        service: session memos warm ACROSS requests.
//   Batch/T              one `op=diagnose_batch` request at T datalog
//                        threads: same shared memos plus datalog-level
//                        parallelism from the private worker group.
//
// Every arm exports datalogs_per_s; the batch-vs-independent ratio is
// the amortization multiple EXPERIMENTS.md quotes.
//
//   ./build/bench/perf_volume                  # google-benchmark arms
//   ./build/bench/perf_volume --volume-check   # one timed pass of the
//        independent and batch arms; verifies per-datalog reports are
//        byte-identical and exits 1 unless batch >= 2x datalogs/s.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "diag/multiplet.hpp"
#include "netlist/bench_parser.hpp"
#include "server/result_json.hpp"
#include "server/service.hpp"
#include "sim/kernel.hpp"
#include "workload/circuits.hpp"
#include "workload/loadgen.hpp"
#include "workload/textio.hpp"

namespace {

using namespace mdd;

constexpr std::size_t kDistinct = 3;  ///< distinct defects in the stream
constexpr std::size_t kRepeats = 6;   ///< recurrences per defect

struct Fixture {
  std::string netlist_path = "/tmp/perf_volume_g1k.bench";
  std::string patterns_path = "/tmp/perf_volume_g1k.patterns";
  Netlist netlist;
  PatternSet patterns;
  /// Datalog texts in stream order: defect i recurs every kDistinct
  /// entries, like the same systematic defect surfacing on many dies.
  std::vector<std::string> stream;

  Fixture() {
    const BenchCircuit bc = load_bench_circuit("g1k");
    {
      std::ofstream os(netlist_path);
      write_bench(os, bc.netlist);
    }
    write_patterns_file(patterns_path, bc.patterns);
    // Both arms must see the circuit EXACTLY as the service does — parsed
    // back from the emitted file — or candidate enumeration order (and so
    // deep suspect ordering) drifts from the write/parse round-trip.
    netlist = parse_bench_file(netlist_path).netlist;
    patterns = read_patterns_file(patterns_path);
    CorpusConfig cfg;
    cfg.n_cases = kDistinct;
    cfg.seed = 3;
    const PatternSet good = simulate(netlist, patterns);
    const std::vector<LoadgenCase> corpus =
        make_corpus(netlist, patterns, good, cfg);
    for (std::size_t r = 0; r < kRepeats; ++r)
      for (const LoadgenCase& lc : corpus) stream.push_back(lc.datalog_text);
  }

  server::Json single_request(std::size_t i) const {
    server::Json r;
    r.set("op", "diagnose");
    r.set("netlist", netlist_path);
    r.set("patterns", patterns_path);
    r.set("datalog", stream[i]);
    r.set("method", "multiplet");
    return r;
  }

  server::Json batch_request(std::size_t threads) const {
    server::Json r;
    r.set("op", "diagnose_batch");
    r.set("netlist", netlist_path);
    r.set("patterns", patterns_path);
    server::JsonArray datalogs;
    datalogs.reserve(stream.size());
    for (const std::string& text : stream) datalogs.emplace_back(text);
    r.set("datalogs", server::Json(std::move(datalogs)));
    r.set("method", "multiplet");
    r.set("threads", threads);
    return r;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

/// The no-amortization baseline: every datalog gets a cold context, so
/// every candidate signature and composite is simulated from scratch.
std::vector<server::Json> run_independent(const Fixture& f) {
  std::vector<server::Json> reports;
  reports.reserve(f.stream.size());
  for (const std::string& text : f.stream) {
    std::istringstream in(text);
    const Datalog log = read_datalog(in, f.netlist);
    DiagnosisContext ctx(f.netlist, f.patterns, log);
    const DiagnosisReport report = diagnose_multiplet(ctx);
    reports.push_back(server::report_to_json(report, f.netlist));
  }
  return reports;
}

void BM_VolumeIndependentSingles(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_independent(f));
  }
  state.counters["datalogs_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * f.stream.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VolumeIndependentSingles)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_VolumeResidentSingles(benchmark::State& state) {
  Fixture& f = fixture();
  server::ServiceOptions options;
  options.n_workers = 1;
  server::DiagnosisService service(options);
  for (auto _ : state) {
    for (std::size_t i = 0; i < f.stream.size(); ++i)
      benchmark::DoNotOptimize(service.handle(f.single_request(i)));
  }
  state.counters["datalogs_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * f.stream.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VolumeResidentSingles)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_VolumeBatch(benchmark::State& state) {
  Fixture& f = fixture();
  server::ServiceOptions options;
  options.n_workers = 1;
  server::DiagnosisService service(options);
  const server::Json request =
      f.batch_request(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.handle(request));
  }
  state.counters["datalogs_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * f.stream.size()),
      benchmark::Counter::kIsRate);
}
// Real time, not CPU time: the batch runs on private threads whose CPU
// the benchmark harness does not observe.
BENCHMARK(BM_VolumeBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// One-shot check mode: times the independent baseline and one batch
/// pass, demands byte-identical per-datalog reports, and fails unless the
/// batch sustains >= 2x the baseline's datalogs/s.
int volume_check() {
  Fixture& f = fixture();
  using Clock = std::chrono::steady_clock;

  const auto t0 = Clock::now();
  const std::vector<server::Json> independent = run_independent(f);
  const double independent_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  server::ServiceOptions options;
  options.n_workers = 1;
  server::DiagnosisService service(options);
  const auto t1 = Clock::now();
  const server::Json response = service.handle(f.batch_request(1));
  const double batch_s =
      std::chrono::duration<double>(Clock::now() - t1).count();
  if (response.get_string("status") != "ok") {
    std::cerr << "perf_volume: batch failed: " << response.dump() << "\n";
    return 1;
  }

  const server::JsonArray& results = response.find("results")->as_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string batch_report =
        results[i].find("reports")->as_array().front().dump();
    if (batch_report != independent[i].dump()) {
      std::cerr << "perf_volume: report " << i
                << " differs between batch and independent single\n"
                << "  batch:       " << batch_report.substr(0, 300) << "\n"
                << "  independent: " << independent[i].dump().substr(0, 300)
                << "\n";
      return 1;
    }
  }

  const double rate_independent = f.stream.size() / independent_s;
  const double rate_batch = f.stream.size() / batch_s;
  const double speedup = rate_batch / rate_independent;
  std::cout << "independent: " << rate_independent << " datalogs/s ("
            << independent_s << " s)\n"
            << "batch:       " << rate_batch << " datalogs/s (" << batch_s
            << " s)\n"
            << "speedup:     " << speedup << "x ("
            << response.find("amortization")->dump() << ")\n";
  if (speedup < 2.0) {
    std::cerr << "perf_volume: batch speedup " << speedup << "x < 2x\n";
    return 1;
  }
  std::cout << "reports byte-identical across " << results.size()
            << " datalogs; speedup >= 2x\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--volume-check") == 0) return volume_check();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("fsim.kernel",
                              std::string(mdd::current_kernel().name));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
