// Ablation 4 — pre-computed fault dictionary vs effect-cause diagnosis.
//
// The dictionary approach pre-simulates the whole fault universe once
// (build cost ~ O(faults x patterns), storage ~ O(faults x failing bits))
// and answers single-defect queries by O(1) lookup; the effect-cause
// multiplet method simulates only the failing cone's candidates per case.
// Quantifies the trade on g200/g1k for single and double defects: build
// time & storage vs per-case CPU, and the dictionary's collapse on
// composite (multi-defect) signatures.
#include "bench/common.hpp"
#include "diag/dictionary.hpp"
#include "diag/metrics.hpp"
#include "diag/multiplet.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation 4",
                      "fault dictionary vs effect-cause multiplet");

  const std::size_t cases = bench::scaled_cases(args, 25);
  std::vector<std::string> names = {"g200", "g1k"};
  if (args.fast) names.pop_back();

  TextTable table({"circuit", "k", "method", "cases", "hit", "exact",
                   "per-case[ms]", "build[s]", "stored bits"});
  for (const std::string& name : names) {
    const BenchCircuit bc = load_bench_circuit(name);
    const Netlist& nl = bc.netlist;
    FaultSimulator fsim(nl, bc.patterns);
    const CollapsedFaults collapsed(nl);
    const FaultDictionary dict(nl, bc.patterns);

    for (std::size_t k = 1; k <= 2; ++k) {
      std::mt19937_64 rng(0xAB44 + k);
      double dict_hit = 0, multi_hit = 0, dict_cpu = 0, multi_cpu = 0;
      std::size_t n = 0, dict_exact = 0, multi_exact = 0;
      for (std::size_t c = 0; c < cases; ++c) {
        DefectSampleConfig dc;
        dc.multiplicity = k;
        dc.bridge_fraction = 0.2;
        const auto defect = sample_defect(nl, fsim, dc, rng);
        if (!defect) continue;
        const Datalog log = datalog_from_defect(nl, *defect, bc.patterns,
                                                fsim.good_response());
        if (!log.has_failures()) continue;
        ++n;

        const DiagnosisReport rd = dict.diagnose(log);
        dict_hit += evaluate_against_truth(rd, *defect, collapsed).hit_rate;
        dict_exact += rd.explains_all;
        dict_cpu += rd.cpu_seconds;

        DiagnosisContext ctx(nl, bc.patterns, log);
        const DiagnosisReport rm = diagnose_multiplet(ctx);
        multi_hit += evaluate_against_truth(rm, *defect, collapsed).hit_rate;
        multi_exact += rm.explains_all;
        multi_cpu += rm.cpu_seconds;
      }
      table.add_row({name, std::to_string(k), "dictionary",
                     std::to_string(n), fmt_pct(dict_hit / n),
                     fmt_pct(static_cast<double>(dict_exact) / n),
                     fmt(1000.0 * dict_cpu / n, 2),
                     fmt(dict.build_seconds(), 2),
                     std::to_string(dict.stored_bits())});
      table.add_row({name, std::to_string(k), "multiplet",
                     std::to_string(n), fmt_pct(multi_hit / n),
                     fmt_pct(static_cast<double>(multi_exact) / n),
                     fmt(1000.0 * multi_cpu / n, 2), "-", "-"});
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
