// Figure 5 — diagnosis under X-masked observations (k = 2, g200).
//
// Testers lose observations to unknown simulation values and compactor
// masking; a masked bit is neither pass nor fail. Sweeps the masked
// fraction and reports hit rates: all methods must degrade gracefully
// because masked bits are excluded from both sides of every match.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 5", "hit rate vs X-masked observation fraction");

  const BenchCircuit bc = load_bench_circuit("g200");
  const std::size_t cases = bench::scaled_cases(args, 40);
  const std::vector<double> fractions = {0.0, 0.02, 0.05, 0.10, 0.20, 0.40};

  TextTable table({"mask", "cases", "single", "slat", "multiplet",
                   "multiplet exact"});
  for (double f : fractions) {
    CampaignConfig cfg;
    cfg.n_cases = cases;
    cfg.defect.multiplicity = 2;
    cfg.defect.bridge_fraction = 0.25;
    cfg.datalog.x_mask_fraction = f;
    cfg.seed = 0xF165;
    const CampaignResult r = bench::run_cell(bc, cfg);
    table.add_row({fmt_pct(f, 0), std::to_string(r.n_cases),
                   fmt(r.single.avg_hit_rate()), fmt(r.slat.avg_hit_rate()),
                   fmt(r.multiplet.avg_hit_rate()),
                   fmt(r.multiplet.exact_rate())});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
