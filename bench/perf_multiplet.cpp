// Perf C — multiplet-diagnosis micro-benchmarks (google-benchmark).
//
// Isolates the tentpole of the multiplet search: composite (multi-fault)
// signature evaluation. Three rungs, each over a multiplicity axis on
// g1k:
//   * one composite evaluation, reference full-circuit simulator vs the
//     event-driven composite propagator;
//   * diagnose_multiplet end to end, reference composites vs the engine
//     (per-request memo only) vs the engine with a warm session memo —
//     the serving configuration, where repeat requests for a circuit
//     replay composites out of the shared CompositeMemo.
#include <benchmark/benchmark.h>

#include "sim/kernel.hpp"

#include <map>

#include "diag/composite_memo.hpp"
#include "diag/multiplet.hpp"
#include "server/signature_memo.hpp"
#include "server/trace_memo.hpp"
#include "workload/campaign.hpp"
#include "workload/circuits.hpp"

namespace {

using namespace mdd;

struct Fixture {
  BenchCircuit bc = load_bench_circuit("g1k");
  FaultSimulator fsim{bc.netlist, bc.patterns};
  std::shared_ptr<const PropagatorBaseline> baseline =
      SingleFaultPropagator::make_baseline(bc.netlist, bc.patterns);

  // Session-style solo-signature store shared by every end-to-end
  // context below: all three diagnosis variants then pay the same
  // (amortized) solo cost and differ only in how composites are
  // evaluated — which is what this bench isolates, and how the serving
  // layer actually runs.
  server::SignatureMemo solos{256ull << 20};
  server::TraceMemo traces;

  CandidateOptions candidate_options() {
    CandidateOptions opt;
    opt.trace_store = &traces;
    return opt;
  }

  struct DefectCase {
    std::vector<Fault> defect;
    Datalog log;
  };
  std::map<std::size_t, DefectCase> cases;

  const DefectCase& at(std::size_t multiplicity) {
    auto it = cases.find(multiplicity);
    if (it != cases.end()) return it->second;
    std::mt19937_64 rng(0xC0DE + multiplicity);
    DefectSampleConfig cfg;
    cfg.multiplicity = multiplicity;
    DefectCase dc;
    dc.defect = *sample_defect(bc.netlist, fsim, cfg, rng);
    dc.log = datalog_from_defect(bc.netlist, dc.defect, bc.patterns,
                                 fsim.good_response());
    return cases.emplace(multiplicity, std::move(dc)).first->second;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

// ---- one composite evaluation ----------------------------------------------

void BM_CompositeEvalReference(benchmark::State& state) {
  Fixture& f = fixture();
  const auto& dc = f.at(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        f.fsim.signature(std::span<const Fault>(dc.defect)));
}
BENCHMARK(BM_CompositeEvalReference)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMicrosecond);

void BM_CompositeEvalEngine(benchmark::State& state) {
  Fixture& f = fixture();
  const auto& dc = f.at(static_cast<std::size_t>(state.range(0)));
  SingleFaultPropagator prop(f.bc.netlist, f.bc.patterns, f.baseline);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        prop.signature(std::span<const Fault>(dc.defect)));
}
BENCHMARK(BM_CompositeEvalEngine)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMicrosecond);

// ---- diagnose_multiplet end to end -----------------------------------------

void BM_DiagnoseMultipletReference(benchmark::State& state) {
  Fixture& f = fixture();
  const auto& dc = f.at(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, dc.log, f.candidate_options(),
                         &f.fsim.good_response(), f.baseline);
    ctx.attach_solo_store(&f.solos);
    ctx.use_reference_composites(true);
    benchmark::DoNotOptimize(diagnose_multiplet(ctx));
  }
}
BENCHMARK(BM_DiagnoseMultipletReference)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_DiagnoseMultipletEngine(benchmark::State& state) {
  Fixture& f = fixture();
  const auto& dc = f.at(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, dc.log, f.candidate_options(),
                         &f.fsim.good_response(), f.baseline);
    ctx.attach_solo_store(&f.solos);
    benchmark::DoNotOptimize(diagnose_multiplet(ctx));
  }
}
BENCHMARK(BM_DiagnoseMultipletEngine)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

// The serving shape: every request builds a fresh context, but the
// session's CompositeMemo persists — after the first request the search
// replays its composites from the memo.
void BM_DiagnoseMultipletEngineSessionMemo(benchmark::State& state) {
  Fixture& f = fixture();
  const auto& dc = f.at(static_cast<std::size_t>(state.range(0)));
  CompositeMemo memo(64ull << 20);
  {
    // Warm request (not timed).
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, dc.log, f.candidate_options(),
                         &f.fsim.good_response(), f.baseline);
    ctx.attach_solo_store(&f.solos);
    ctx.attach_composite_memo(&memo);
    benchmark::DoNotOptimize(diagnose_multiplet(ctx));
  }
  for (auto _ : state) {
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, dc.log, f.candidate_options(),
                         &f.fsim.good_response(), f.baseline);
    ctx.attach_solo_store(&f.solos);
    ctx.attach_composite_memo(&memo);
    benchmark::DoNotOptimize(diagnose_multiplet(ctx));
  }
}
BENCHMARK(BM_DiagnoseMultipletEngineSessionMemo)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("fsim.kernel",
                              std::string(mdd::current_kernel().name));
  benchmark::AddCustomContext("fsim.kernels_available", mdd::kernel_names());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
