// Table 5 — the crossover the title is about: defect interaction vs the
// SLAT assumption.
//
// Sweeps interaction strength (anywhere / shared observation cone / same
// sensitization cone) at k = 3. Reports the measured fraction of failing
// patterns that still satisfy the SLAT property, and each method's hit
// rate. As interaction grows the SLAT fraction drops and the SLAT-style
// baseline falls away from the no-assumptions method — that widening gap
// is the paper's core claim.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Table 5",
                      "SLAT-property violation under defect interaction (k=3)");

  const std::vector<std::pair<std::string, InteractionLevel>> levels = {
      {"anywhere", InteractionLevel::None},
      {"shared-POs", InteractionLevel::SharedOutputs},
      {"same-cone", InteractionLevel::SameCone}};
  const std::vector<std::string> names = {"g200", "g1k"};
  const std::size_t cases = bench::scaled_cases(args, 40);

  TextTable table({"circuit", "interaction", "cases", "SLAT-frac",
                   "single hit", "slat hit", "multiplet hit",
                   "slat exact", "multiplet exact"});
  for (const std::string& name : names) {
    const BenchCircuit bc = load_bench_circuit(name);
    for (const auto& [label, level] : levels) {
      CampaignConfig cfg;
      cfg.n_cases = cases;
      cfg.defect.multiplicity = 3;
      cfg.defect.bridge_fraction = 0.25;
      cfg.defect.interaction = level;
      cfg.seed = 0x7AB5;
      const CampaignResult r = bench::run_cell(bc, cfg);
      table.add_row({name, label, std::to_string(r.n_cases),
                     fmt_pct(r.avg_slat_fraction),
                     fmt_pct(r.single.avg_hit_rate()),
                     fmt_pct(r.slat.avg_hit_rate()),
                     fmt_pct(r.multiplet.avg_hit_rate()),
                     fmt_pct(r.slat.exact_rate()),
                     fmt_pct(r.multiplet.exact_rate())});
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
