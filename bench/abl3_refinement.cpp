// Ablation 3 — greedy refinement and shortlist width.
//
// Greedy multiplet construction commits one candidate per round; a bad
// first pick (two defects jointly mimicking a third site) is unrecoverable
// without the drop/1-swap local search, and a too-narrow shortlist can
// hide the right extension behind look-alikes. Sweeps both knobs at k = 3
// on g200.
#include "bench/common.hpp"
#include "diag/metrics.hpp"
#include "diag/multiplet.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation 3", "refinement & shortlist width (k=3)");

  const BenchCircuit bc = load_bench_circuit("g200");
  const Netlist& nl = bc.netlist;
  FaultSimulator fsim(nl, bc.patterns);
  const CollapsedFaults collapsed(nl);
  const std::size_t cases = bench::scaled_cases(args, 30);

  struct Variant {
    std::string name;
    bool refine;
    std::size_t shortlist;
  };
  const std::vector<Variant> variants = {
      {"no-refine, shortlist 24", false, 24},
      {"refine, shortlist 8", true, 8},
      {"refine, shortlist 24 (default)", true, 24},
      {"refine, shortlist 64", true, 64}};

  TextTable table(
      {"variant", "cases", "hit", "all-hit", "exact", "cpu[ms]"});
  for (const Variant& v : variants) {
    std::mt19937_64 rng(0xAB33);
    double hit_sum = 0, cpu_sum = 0;
    std::size_t n = 0, all_hit = 0, exact = 0;
    for (std::size_t c = 0; c < cases; ++c) {
      DefectSampleConfig dc;
      dc.multiplicity = 3;
      dc.bridge_fraction = 0.25;
      const auto defect = sample_defect(nl, fsim, dc, rng);
      if (!defect) continue;
      const Datalog log = datalog_from_defect(nl, *defect, bc.patterns,
                                              fsim.good_response());
      if (!log.has_failures()) continue;
      DiagnosisContext ctx(nl, bc.patterns, log);
      MultipletOptions opt;
      opt.refine = v.refine;
      opt.shortlist = v.shortlist;
      const DiagnosisReport r = diagnose_multiplet(ctx, opt);
      const TruthEvaluation ev =
          evaluate_against_truth(r, *defect, collapsed);
      ++n;
      hit_sum += ev.hit_rate;
      all_hit += ev.all_hit;
      exact += r.explains_all;
      cpu_sum += r.cpu_seconds;
    }
    table.add_row({v.name, std::to_string(n), fmt_pct(hit_sum / n),
                   fmt_pct(static_cast<double>(all_hit) / n),
                   fmt_pct(static_cast<double>(exact) / n),
                   fmt(1000.0 * cpu_sum / n, 1)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
