// openmdd bench harness — shared helpers.
//
// Every table/figure binary accepts:
//   --cases N     override the per-cell campaign case count
//   --fast        quarter-size campaigns (CI smoke)
//   --threads N   case-parallel campaigns on N threads (0 = all cores;
//                 default from MDD_THREADS, else serial). Results are
//                 byte-identical to serial for any N.
// and prints the reproduced table in the paper's layout followed by a CSV
// block (for plotting).
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/exec.hpp"
#include "workload/campaign.hpp"
#include "workload/circuits.hpp"
#include "workload/table.hpp"

namespace mdd::bench {

struct BenchArgs {
  std::size_t cases = 0;  // 0 = binary's default
  bool fast = false;
  ExecPolicy exec = ExecPolicy::from_env();
};

/// Execution policy applied by run_cell (set from the parsed args so the
/// per-table binaries stay declarative).
inline ExecPolicy g_exec = ExecPolicy::from_env();

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      args.fast = true;
    } else if (std::strcmp(argv[i], "--cases") == 0 && i + 1 < argc) {
      args.cases = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.exec = ExecPolicy::parallel(
          static_cast<std::size_t>(std::atol(argv[++i])));
    }
  }
  g_exec = args.exec;
  return args;
}

inline std::size_t scaled_cases(const BenchArgs& args, std::size_t dflt) {
  if (args.cases > 0) return args.cases;
  return args.fast ? std::max<std::size_t>(4, dflt / 4) : dflt;
}

inline void print_header(const std::string& id, const std::string& title) {
  std::cout << "==============================================================\n"
            << id << " — " << title << "\n"
            << "(reconstructed evaluation; see DESIGN.md / EXPERIMENTS.md)\n"
            << "==============================================================\n";
}

/// Runs one campaign cell and returns the result (thin wrapper to keep the
/// per-table binaries declarative). Applies the --threads / MDD_THREADS
/// execution policy; the reproduced numbers do not depend on it.
inline CampaignResult run_cell(const BenchCircuit& bc, CampaignConfig cfg) {
  cfg.exec = g_exec;
  return run_campaign(bc.netlist, bc.patterns, cfg);
}

}  // namespace mdd::bench
