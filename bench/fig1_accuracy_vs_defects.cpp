// Figure 1 — hit rate vs number of simultaneous defects (series plot).
//
// One series per method, k = 1..6 on g200. The figure's expected shape:
// all methods start at ~100% for k=1; the single-fault baseline collapses
// immediately; SLAT degrades with the growing share of non-SLAT failing
// patterns; the no-assumptions multiplet method stays on top.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 1", "hit rate vs defect multiplicity (g200)");

  const BenchCircuit bc = load_bench_circuit("g200");
  const std::size_t cases = bench::scaled_cases(args, 40);

  TextTable table({"k", "cases", "single", "slat", "multiplet",
                   "SLAT-frac"});
  for (std::size_t k = 1; k <= 6; ++k) {
    CampaignConfig cfg;
    cfg.n_cases = cases;
    cfg.defect.multiplicity = k;
    cfg.defect.bridge_fraction = 0.25;
    cfg.seed = 0xF161 + k;
    const CampaignResult r = bench::run_cell(bc, cfg);
    table.add_row({std::to_string(k), std::to_string(r.n_cases),
                   fmt(r.single.avg_hit_rate()), fmt(r.slat.avg_hit_rate()),
                   fmt(r.multiplet.avg_hit_rate()),
                   fmt(r.avg_slat_fraction)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
