// Table 4 — diagnosis quality vs fault-model mix at k = 3.
//
// Sweeps the multiplet composition from stuck-at-only through mixed to
// bridge-only. Bridges are conditional faults (victim corrupted only when
// the aggressor carries the opposite value), so they stress candidate
// extraction and the composite scoring differently than hard stuck-ats.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Table 4", "diagnosis quality vs fault-model mix (k=3)");

  const std::vector<std::pair<std::string, double>> mixes = {
      {"SA only", 0.0}, {"mixed 50/50", 0.5}, {"bridge only", 1.0}};
  const std::vector<std::string> names = {"g200", "g1k"};
  const std::size_t cases = bench::scaled_cases(args, 30);

  TextTable table({"circuit", "mix", "cases", "method", "hit", "all-hit",
                   "exact", "resolution"});
  for (const std::string& name : names) {
    const BenchCircuit bc = load_bench_circuit(name);
    for (const auto& [label, fraction] : mixes) {
      CampaignConfig cfg;
      cfg.n_cases = cases;
      cfg.defect.multiplicity = 3;
      cfg.defect.bridge_fraction = fraction;
      cfg.seed = 0x7AB4;
      const CampaignResult r = bench::run_cell(bc, cfg);
      for (const MethodAggregate* m :
           {&r.single, &r.slat, &r.multiplet}) {
        table.add_row({name, label, std::to_string(r.n_cases), m->method,
                       fmt_pct(m->avg_hit_rate()), fmt_pct(m->all_hit_rate()),
                       fmt_pct(m->exact_rate()),
                       fmt(m->avg_resolution(), 2)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
