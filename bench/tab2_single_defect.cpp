// Table 2 — single-defect sanity: with one defect all three methods must
// localize it (the multiple-defect machinery may not regress the easy
// case). Reports hit rate, exact-explanation rate, resolution and CPU.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Table 2", "single-defect diagnosis sanity");

  const std::vector<std::string> names = {"c17", "add8", "g200", "g1k"};
  const std::size_t cases = bench::scaled_cases(args, 30);

  TextTable table({"circuit", "cases", "method", "hit", "first-hit", "exact",
                   "resolution", "cpu[ms]"});
  for (const std::string& name : names) {
    const BenchCircuit bc = load_bench_circuit(name);
    CampaignConfig cfg;
    cfg.n_cases = cases;
    cfg.defect.multiplicity = 1;
    cfg.defect.bridge_fraction = 0.2;
    cfg.seed = 0x7AB2;
    const CampaignResult r = bench::run_cell(bc, cfg);
    for (const MethodAggregate* m :
         {&r.single, &r.slat, &r.multiplet}) {
      table.add_row({name, std::to_string(r.n_cases), m->method,
                     fmt_pct(m->avg_hit_rate()), fmt_pct(m->first_hit_rate()),
                     fmt_pct(m->exact_rate()), fmt(m->avg_resolution(), 2),
                     fmt(m->avg_cpu_ms(), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
