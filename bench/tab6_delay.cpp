// Table 6 (extension) — transition-fault (delay defect) diagnosis under
// two-pattern testing.
//
// Defect multiplets mix slow-to-rise/fall transition faults with stuck-at
// faults; datalogs come from launch/capture pair simulation; diagnosis
// runs in pair mode (candidates include transition faults, every signature
// is two-frame). Sweeps multiplicity and the dynamic/static mix on g200.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Table 6",
                      "transition-fault diagnosis (two-pattern testing)");

  const Netlist nl = make_named_circuit("g200");
  TdfTpgOptions tdf;
  tdf.seed = 0x7AB6;
  const TdfTpgResult tests = generate_tdf_tests(nl, tdf);
  std::cout << "pairs=" << tests.capture.n_patterns()
            << " transition coverage=" << fmt_pct(tests.coverage()) << "\n\n";

  const std::size_t cases = bench::scaled_cases(args, 30);
  const std::vector<std::pair<std::string, double>> mixes = {
      {"transition only", 1.0},
      {"mixed 50/50", 0.5},
      {"stuck-at only", 0.0}};

  TextTable table({"mix", "k", "cases", "method", "hit", "all-hit", "exact",
                   "resolution"});
  for (const auto& [label, fraction] : mixes) {
    for (std::size_t k = 1; k <= 3; ++k) {
      CampaignConfig cfg;
      cfg.n_cases = cases;
      cfg.defect.multiplicity = k;
      cfg.defect.transition_fraction = fraction;
      cfg.seed = 0x7AB6 + k;
      cfg.exec = args.exec;
      const CampaignResult r =
          run_tdf_campaign(nl, tests.launch, tests.capture, cfg);
      for (const MethodAggregate* m :
           {&r.single, &r.slat, &r.multiplet}) {
        table.add_row({label, std::to_string(k), std::to_string(r.n_cases),
                       m->method, fmt_pct(m->avg_hit_rate()),
                       fmt_pct(m->all_hit_rate()), fmt_pct(m->exact_rate()),
                       fmt(m->avg_resolution(), 2)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
