// Figure 4 — ATE datalog truncation (k = 2, g200).
//
// Real testers stop logging after N failing patterns. Sweeps the cap and
// reports each method's hit rate: diagnosis must degrade gracefully, and
// the multiplet method must keep its lead because it uses the applied
// window's passing patterns, not per-pattern explainability.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 4", "hit rate vs ATE failing-pattern cap");

  const BenchCircuit bc = load_bench_circuit("g200");
  const std::size_t cases = bench::scaled_cases(args, 40);
  const std::vector<std::size_t> caps = {2, 4, 8, 16, 32, SIZE_MAX};

  TextTable table({"cap", "cases", "single", "slat", "multiplet",
                   "multiplet exact"});
  for (std::size_t cap : caps) {
    CampaignConfig cfg;
    cfg.n_cases = cases;
    cfg.defect.multiplicity = 2;
    cfg.defect.bridge_fraction = 0.25;
    cfg.datalog.max_failing_patterns = cap;
    cfg.seed = 0xF164;
    const CampaignResult r = bench::run_cell(bc, cfg);
    table.add_row({cap == SIZE_MAX ? "unlimited" : std::to_string(cap),
                   std::to_string(r.n_cases), fmt(r.single.avg_hit_rate()),
                   fmt(r.slat.avg_hit_rate()),
                   fmt(r.multiplet.avg_hit_rate()),
                   fmt(r.multiplet.exact_rate())});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
