// Perf B — diagnosis-pipeline micro-benchmarks (google-benchmark).
//
// Measures the stages of one diagnosis case on g1k: candidate extraction,
// context construction (solo-signature cache fill happens lazily inside
// the diagnosers), and each diagnoser end-to-end.
#include <benchmark/benchmark.h>

#include "sim/kernel.hpp"

#include "diag/multiplet.hpp"
#include "diag/single_fault.hpp"
#include "diag/slat.hpp"
#include "workload/campaign.hpp"
#include "workload/circuits.hpp"

namespace {

using namespace mdd;

struct Fixture {
  BenchCircuit bc = load_bench_circuit("g1k");
  FaultSimulator fsim{bc.netlist, bc.patterns};
  std::vector<Fault> defect;
  Datalog log;

  Fixture() {
    std::mt19937_64 rng(0xD1A6);
    DefectSampleConfig cfg;
    cfg.multiplicity = 3;
    cfg.bridge_fraction = 0.25;
    defect = *sample_defect(bc.netlist, fsim, cfg, rng);
    log = datalog_from_defect(bc.netlist, defect, bc.patterns,
                              fsim.good_response());
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_CandidateExtraction(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extract_candidates(f.bc.netlist, f.bc.patterns, f.log));
  }
}
BENCHMARK(BM_CandidateExtraction);

void BM_ContextConstruction(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, f.log);
    benchmark::DoNotOptimize(ctx.n_candidates());
  }
}
BENCHMARK(BM_ContextConstruction);

void BM_DiagnoseSingleFault(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, f.log);
    benchmark::DoNotOptimize(diagnose_single_fault(ctx));
  }
}
BENCHMARK(BM_DiagnoseSingleFault);

void BM_DiagnoseSlat(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, f.log);
    benchmark::DoNotOptimize(diagnose_slat(ctx));
  }
}
BENCHMARK(BM_DiagnoseSlat);

void BM_DiagnoseMultiplet(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, f.log);
    benchmark::DoNotOptimize(diagnose_multiplet(ctx));
  }
}
BENCHMARK(BM_DiagnoseMultiplet);

ExecPolicy policy_of(const benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  return threads <= 1 ? ExecPolicy::serial() : ExecPolicy::parallel(threads);
}

// Threads axis: candidate-parallel solo-signature cache warm — the cost
// every diagnoser pays on first access, isolated from context
// construction. Cached values are byte-identical across the axis.
void BM_WarmSoloCacheThreads(benchmark::State& state) {
  Fixture& f = fixture();
  const ExecPolicy policy = policy_of(state);
  for (auto _ : state) {
    state.PauseTiming();
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, f.log);
    state.ResumeTiming();
    ctx.warm_solo_signatures(policy);
    benchmark::DoNotOptimize(ctx.solo_compute_count());
  }
}
BENCHMARK(BM_WarmSoloCacheThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Threads axis: case-parallel campaign end to end (sampling, datalog,
// three diagnosers per case). Deterministic fields of the result are
// byte-identical across the axis.
void BM_CampaignThreads(benchmark::State& state) {
  Fixture& f = fixture();
  CampaignConfig cfg;
  cfg.n_cases = 8;
  cfg.defect.multiplicity = 2;
  cfg.seed = 0xD1A6;
  cfg.exec = policy_of(state);
  for (auto _ : state) {
    const CampaignResult r = run_campaign(f.bc.netlist, f.bc.patterns, cfg);
    benchmark::DoNotOptimize(r.n_cases);
  }
}
BENCHMARK(BM_CampaignThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("fsim.kernel",
                              std::string(mdd::current_kernel().name));
  benchmark::AddCustomContext("fsim.kernels_available", mdd::kernel_names());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
