// Perf B — diagnosis-pipeline micro-benchmarks (google-benchmark).
//
// Measures the stages of one diagnosis case on g1k: candidate extraction,
// context construction (solo-signature cache fill happens lazily inside
// the diagnosers), and each diagnoser end-to-end.
#include <benchmark/benchmark.h>

#include "diag/multiplet.hpp"
#include "diag/single_fault.hpp"
#include "diag/slat.hpp"
#include "workload/campaign.hpp"
#include "workload/circuits.hpp"

namespace {

using namespace mdd;

struct Fixture {
  BenchCircuit bc = load_bench_circuit("g1k");
  FaultSimulator fsim{bc.netlist, bc.patterns};
  std::vector<Fault> defect;
  Datalog log;

  Fixture() {
    std::mt19937_64 rng(0xD1A6);
    DefectSampleConfig cfg;
    cfg.multiplicity = 3;
    cfg.bridge_fraction = 0.25;
    defect = *sample_defect(bc.netlist, fsim, cfg, rng);
    log = datalog_from_defect(bc.netlist, defect, bc.patterns,
                              fsim.good_response());
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_CandidateExtraction(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extract_candidates(f.bc.netlist, f.bc.patterns, f.log));
  }
}
BENCHMARK(BM_CandidateExtraction);

void BM_ContextConstruction(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, f.log);
    benchmark::DoNotOptimize(ctx.n_candidates());
  }
}
BENCHMARK(BM_ContextConstruction);

void BM_DiagnoseSingleFault(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, f.log);
    benchmark::DoNotOptimize(diagnose_single_fault(ctx));
  }
}
BENCHMARK(BM_DiagnoseSingleFault);

void BM_DiagnoseSlat(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, f.log);
    benchmark::DoNotOptimize(diagnose_slat(ctx));
  }
}
BENCHMARK(BM_DiagnoseSlat);

void BM_DiagnoseMultiplet(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    DiagnosisContext ctx(f.bc.netlist, f.bc.patterns, f.log);
    benchmark::DoNotOptimize(diagnose_multiplet(ctx));
  }
}
BENCHMARK(BM_DiagnoseMultiplet);

}  // namespace

BENCHMARK_MAIN();
