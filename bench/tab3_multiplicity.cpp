// Table 3 (headline) — multiple-defect diagnosis vs defect multiplicity.
//
// For k = 2..5 simultaneous defects (mixed stuck-at + dominant bridges),
// compares the no-assumptions multiplet method against the SLAT-style and
// single-fault baselines: average hit rate (injected defects named),
// all-hit rate, resolution (#suspects / #defects) and CPU per case.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Table 3",
                      "diagnosis quality vs defect multiplicity (k)");

  const std::vector<std::string> names = {"g200", "g1k"};
  const std::size_t cases = bench::scaled_cases(args, 30);

  TextTable table({"circuit", "k", "cases", "method", "hit", "all-hit",
                   "exact", "resolution", "cpu[ms]"});
  for (const std::string& name : names) {
    const BenchCircuit bc = load_bench_circuit(name);
    for (std::size_t k = 2; k <= 5; ++k) {
      CampaignConfig cfg;
      cfg.n_cases = cases;
      cfg.defect.multiplicity = k;
      cfg.defect.bridge_fraction = 0.25;
      cfg.seed = 0x7AB3 + k;
      const CampaignResult r = bench::run_cell(bc, cfg);
      for (const MethodAggregate* m :
           {&r.single, &r.slat, &r.multiplet}) {
        table.add_row({name, std::to_string(k), std::to_string(r.n_cases),
                       m->method, fmt_pct(m->avg_hit_rate()),
                       fmt_pct(m->all_hit_rate()), fmt_pct(m->exact_rate()),
                       fmt(m->avg_resolution(), 2), fmt(m->avg_cpu_ms(), 1)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
