// Ablation 2 — multiplet scoring-weight calibration.
//
// The no-assumptions method's committing decision is the composite score
// w_tfsf*TFSF - w_tpsf*TPSF - w_tfsp*TFSP. Compares:
//   classic 10/5/2 — single-fault-era weights; harsh misprediction penalty
//                    biases early rounds toward conservative per-output
//                    faults and fragments real stem defects
//   mild 10/2/1    — the library default (mispredictions may be masked by
//                    members not yet selected)
//   tfsf-only 10/0/0 — no penalties at all; overfits noisy candidates
// at k = 3 on g200.
#include "bench/common.hpp"
#include "diag/metrics.hpp"
#include "diag/multiplet.hpp"

int main(int argc, char** argv) {
  using namespace mdd;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation 2", "multiplet score weights (k=3)");

  const BenchCircuit bc = load_bench_circuit("g200");
  const Netlist& nl = bc.netlist;
  FaultSimulator fsim(nl, bc.patterns);
  const CollapsedFaults collapsed(nl);
  const std::size_t cases = bench::scaled_cases(args, 30);

  const std::vector<std::pair<std::string, ScoreWeights>> variants = {
      {"classic 10/5/2", {10, 5, 2}},
      {"mild 10/2/1 (default)", {10, 2, 1}},
      {"tfsf-only 10/0/0", {10, 0, 0}}};

  TextTable table({"weights", "cases", "hit", "all-hit", "exact",
                   "resolution"});
  for (const auto& [label, weights] : variants) {
    std::mt19937_64 rng(0xAB22);
    double hit_sum = 0, res_sum = 0;
    std::size_t n = 0, all_hit = 0, exact = 0;
    for (std::size_t c = 0; c < cases; ++c) {
      DefectSampleConfig dc;
      dc.multiplicity = 3;
      dc.bridge_fraction = 0.25;
      const auto defect = sample_defect(nl, fsim, dc, rng);
      if (!defect) continue;
      const Datalog log = datalog_from_defect(nl, *defect, bc.patterns,
                                              fsim.good_response());
      if (!log.has_failures()) continue;
      DiagnosisContext ctx(nl, bc.patterns, log);
      MultipletOptions opt;
      opt.weights = weights;
      const DiagnosisReport r = diagnose_multiplet(ctx, opt);
      const TruthEvaluation ev =
          evaluate_against_truth(r, *defect, collapsed);
      ++n;
      hit_sum += ev.hit_rate;
      res_sum += ev.resolution;
      all_hit += ev.all_hit;
      exact += r.explains_all;
    }
    table.add_row({label, std::to_string(n), fmt_pct(hit_sum / n),
                   fmt_pct(static_cast<double>(all_hit) / n),
                   fmt_pct(static_cast<double>(exact) / n),
                   fmt(res_sum / n, 2)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
